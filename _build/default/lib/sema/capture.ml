open Mc_ast.Tree
module Ctype = Mc_ast.Ctype
module Visit = Mc_ast.Visit
module Loc = Mc_srcmgr.Source_location

(* Free variables: walk the subtree collecting declarations and references;
   a reference is free if its declaration was not seen in the subtree. *)
let free_of ~declared_seed walk =
  let declared = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace declared v.v_id ()) declared_seed;
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let on_var v = Hashtbl.replace declared v.v_id () in
  let on_expr e =
    match e.e_kind with
    | Decl_ref v ->
      if (not (Hashtbl.mem declared v.v_id)) && not (Hashtbl.mem seen v.v_id)
      then begin
        Hashtbl.add seen v.v_id ();
        order := v :: !order
      end
    | _ -> ()
  in
  walk ~on_var ~on_expr;
  List.rev !order

(* NOTE: declarations are collected by the same pre-order walk that sees the
   references, so a use before its declaration in a later sibling would be
   misclassified; C scoping makes that impossible in parsed code. *)
(* Shadow children are included: a captured region containing a consumed
   loop transformation will have CodeGen emit the transformed AST, whose
   references must be captured as well (its own preinit declarations are
   visited first and therefore not free). *)
let free_variables s =
  free_of ~declared_seed:[] (fun ~on_var ~on_expr ->
      Visit.iter ~shadow:true ~on_var ~on_expr s)

let free_variables_of_expr e =
  free_of ~declared_seed:[] (fun ~on_var ~on_expr ->
      ignore on_var;
      let rec walk e =
        on_expr e;
        List.iter walk (Visit.expr_children e)
      in
      walk e)

let implicit_param name ty =
  mk_var ~implicit:true ~name ~ty ~loc:Loc.invalid ()

let make_captured_stmt body =
  let captures = free_variables body in
  List.iter (fun v -> v.v_used <- true) captures;
  let params =
    [
      implicit_param ".global_tid." (Ptr Ctype.int_t);
      implicit_param ".bound_tid." (Ptr Ctype.int_t);
      implicit_param "__context" (Ptr Void);
    ]
  in
  mk_stmt ~loc:body.s_loc
    (Captured
       { cap_body = body; cap_captures = captures; cap_byval = []; cap_params = params })

let make_lambda ~params ?(byval = []) body =
  let captures =
    free_of
      ~declared_seed:(params @ byval)
      (fun ~on_var ~on_expr -> Visit.iter ~shadow:false ~on_var ~on_expr body)
  in
  { cap_body = body; cap_captures = captures; cap_byval = byval; cap_params = params }
