(** OpenMP directive-level semantic analysis: clause validation, canonical
    loop-nest collection, and the construction of either representation —
    shadow AST (paper §2) in [Classic] mode, [OMPCanonicalLoop] (paper §3)
    in [Irbuilder] mode — exactly as Clang switches on
    [-fopenmp-enable-irbuilder]. *)

open Mc_ast.Tree

val act_on_clause_expr_positive :
  Sema.t -> what:string -> expr -> loc:loc -> int * expr
(** Evaluates a clause argument that must be a positive integer constant
    ([collapse], [partial], [sizes], [simdlen]); recovers with 1. *)

val act_on_directive :
  Sema.t -> kind:directive_kind -> clauses:clause list -> assoc:stmt option ->
  loc:loc -> stmt
(** Builds the directive statement.  For loop-based directives this:
    - collects the associated canonical loop nest (depth from
      [collapse]/[sizes]), looking through loop transformations whose
      generated loop is consumed (calling [getTransformedStmt] in classic
      mode, per §2);
    - diagnoses non-canonical loops, insufficient nesting depth, and
      association with a transformation that generates no loop (full or
      heuristic unroll);
    - in classic mode, fills the shadow AST: [dir_transformed]/
      [dir_preinits] for unroll/tile, [dir_loop_helpers] + [CapturedStmt]
      wrapping for the OMPLoopDirective family;
    - in irbuilder mode, wraps each associated literal loop in
      [OMPCanonicalLoop]. *)

val transformed_stmt : directive -> stmt option
(** [getTransformedStmt()]: the generated loop of a transformation
    directive, or [None] if it does not produce one. *)
