open Mc_ir.Ir

let remove_unreachable f =
  let reachable = Hashtbl.create 32 in
  let rec dfs b =
    if not (Hashtbl.mem reachable b.b_id) then begin
      Hashtbl.add reachable b.b_id ();
      List.iter dfs (successors b)
    end
  in
  dfs (entry_block f);
  let dead = List.filter (fun b -> not (Hashtbl.mem reachable b.b_id)) f.f_blocks in
  if dead = [] then false
  else begin
    let is_dead b = List.exists (fun d -> d == b) dead in
    List.iter
      (fun b ->
        List.iter
          (fun phi ->
            match phi.i_kind with
            | Phi { incoming } ->
              phi.i_kind <-
                Phi
                  {
                    incoming =
                      List.filter (fun (_, ib) -> not (is_dead ib)) incoming;
                  }
            | _ -> ())
          (block_phis b))
      (List.filter (fun b -> not (is_dead b)) f.f_blocks);
    remove_blocks f dead;
    true
  end

(* Merge [b] with its unique successor [s] when [s] has [b] as its unique
   predecessor and no phis.  [s]'s loop metadata survives (it may be a loop
   latch). *)
let merge_pairs f =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidate =
      List.find_opt
        (fun b ->
          match b.b_term with
          | Br s ->
            (not (s == b))
            && (not (s == entry_block f))
            && (match predecessors f s with [ p ] -> p == b | _ -> false)
            && block_phis s = []
          | _ -> false)
        f.f_blocks
    in
    match candidate with
    | Some b -> (
      match b.b_term with
      | Br s ->
        List.iter (fun i -> append_inst b i) (block_insts s);
        b.b_term <- s.b_term;
        b.b_loop_md <-
          {
            md_unroll =
              (match s.b_loop_md.md_unroll with
              | Some u -> Some u
              | None -> b.b_loop_md.md_unroll);
            md_vectorize_width =
              (match s.b_loop_md.md_vectorize_width with
              | Some w -> Some w
              | None -> b.b_loop_md.md_vectorize_width);
          };
        (* Phis elsewhere that named [s] as an incoming block now see [b]. *)
        List.iter
          (fun blk ->
            List.iter
              (fun phi ->
                match phi.i_kind with
                | Phi { incoming } ->
                  phi.i_kind <-
                    Phi
                      {
                        incoming =
                          List.map
                            (fun (v, ib) -> if ib == s then (v, b) else (v, ib))
                            incoming;
                      }
                | _ -> ())
              (block_phis blk))
          f.f_blocks;
        remove_blocks f [ s ];
        changed := true;
        continue_ := true
      | _ -> ())
    | None -> ()
  done;
  !changed

(* Forward branches through empty blocks (no instructions, unconditional
   branch) when the target's phis stay consistent. *)
let forward_empty f =
  let changed = ref false in
  List.iter
    (fun b ->
      if (not (b == entry_block f)) && block_insts b = [] then begin
        match b.b_term with
        (* Safe when the target has no phis (otherwise incoming edges would
           need merging, with possible conflicts). *)
        | Br t when (not (t == b)) && block_phis t = [] ->
          let preds = predecessors f b in
          if preds <> [] then begin
            List.iter (fun p -> replace_successor p ~from:b ~into:t) preds;
            changed := true
          end
        | _ -> ()
      end)
    f.f_blocks;
  !changed

let run_func f =
  if f.f_is_decl || f.f_blocks = [] then false
  else begin
    let changed = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      if remove_unreachable f then begin
        changed := true;
        continue_ := true
      end;
      if forward_empty f then begin
        changed := true;
        continue_ := true
      end;
      if remove_unreachable f then begin
        changed := true;
        continue_ := true
      end;
      if merge_pairs f then begin
        changed := true;
        continue_ := true
      end
    done;
    !changed
  end

let run m =
  List.fold_left
    (fun acc f -> run_func f || acc)
    false
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
