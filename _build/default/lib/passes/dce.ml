open Mc_ir.Ir

let has_side_effects i =
  match i.i_kind with
  | Store _ | Call _ -> true
  | Alloca _ | Load _ | Binop _ | Icmp _ | Fcmp _ | Cast _ | Gep _ | Select _
  | Phi _ ->
    false

let run_func f =
  if f.f_is_decl then false
  else begin
    (* Mark: roots are side-effecting instructions and terminator operands. *)
    let live = Hashtbl.create 64 in
    let worklist = Queue.create () in
    let mark v =
      match v with
      | Inst_ref i when not (Hashtbl.mem live i.i_id) ->
        Hashtbl.add live i.i_id ();
        Queue.add i worklist
      | _ -> ()
    in
    List.iter
      (fun b ->
        List.iter
          (fun i -> if has_side_effects i then mark (Inst_ref i))
          (block_insts b);
        List.iter mark (terminator_operands b.b_term))
      f.f_blocks;
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      List.iter mark (inst_operands i)
    done;
    (* Sweep. *)
    let changed = ref false in
    List.iter
      (fun b ->
        let keep, drop =
          List.partition (fun i -> Hashtbl.mem live i.i_id) (block_insts b)
        in
        if drop <> [] then begin
          changed := true;
          set_block_insts b keep
        end)
      f.f_blocks;
    !changed
  end

let run m =
  List.fold_left
    (fun acc f -> run_func f || acc)
    false
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
