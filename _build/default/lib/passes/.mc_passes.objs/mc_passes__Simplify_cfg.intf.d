lib/passes/simplify_cfg.mli: Mc_ir
