lib/passes/const_prop.ml: Hashtbl Int64 List Mc_ir Option
