lib/passes/trip_count.ml: Int64 List Loop_info Mc_ir Mc_support
