lib/passes/loop_info.ml: Dominators Hashtbl List Mc_ir Option
