lib/passes/dominators.ml: Hashtbl List Mc_ir Option
