lib/passes/const_prop.mli: Mc_ir
