lib/passes/simplify_cfg.ml: Hashtbl List Mc_ir
