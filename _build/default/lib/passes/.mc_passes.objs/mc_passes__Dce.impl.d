lib/passes/dce.ml: Hashtbl List Mc_ir Queue
