lib/passes/loop_unroll.mli: Mc_ir
