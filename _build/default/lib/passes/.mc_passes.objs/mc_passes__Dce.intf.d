lib/passes/dce.mli: Mc_ir
