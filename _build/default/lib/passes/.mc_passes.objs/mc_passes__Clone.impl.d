lib/passes/clone.ml: Hashtbl List Mc_ir Option
