lib/passes/clone.mli: Ir Mc_ir
