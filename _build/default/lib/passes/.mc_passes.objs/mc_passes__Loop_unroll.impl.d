lib/passes/loop_unroll.ml: Clone Dominators Hashtbl Int64 List Loop_info Mc_ir Option Printf Trip_count
