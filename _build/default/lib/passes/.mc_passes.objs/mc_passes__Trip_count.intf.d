lib/passes/trip_count.mli: Ir Loop_info Mc_ir
