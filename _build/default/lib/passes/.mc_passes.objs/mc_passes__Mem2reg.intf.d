lib/passes/mem2reg.mli: Mc_ir
