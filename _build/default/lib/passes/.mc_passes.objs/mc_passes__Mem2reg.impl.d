lib/passes/mem2reg.ml: Dominators Hashtbl List Mc_ir Queue
