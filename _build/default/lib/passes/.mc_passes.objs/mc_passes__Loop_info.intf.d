lib/passes/loop_info.mli: Dominators Ir Mc_ir
