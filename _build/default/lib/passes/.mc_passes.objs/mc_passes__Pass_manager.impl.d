lib/passes/pass_manager.ml: Const_prop Dce List Loop_unroll Mc_ir Mem2reg Printf Simplify_cfg
