lib/passes/dominators.mli: Ir Mc_ir
