lib/passes/pass_manager.mli: Loop_unroll Mc_ir
