open Mc_ir.Ir

type t = {
  func : func;
  rpo : block list;
  rpo_index : (int, int) Hashtbl.t; (* block id -> RPO position *)
  idoms : (int, block) Hashtbl.t; (* block id -> immediate dominator *)
  frontiers : (int, block list) Hashtbl.t;
  kids : (int, block list) Hashtbl.t;
}

let reverse_postorder_of func =
  let visited = Hashtbl.create 32 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b.b_id) then begin
      Hashtbl.add visited b.b_id ();
      List.iter dfs (successors b);
      order := b :: !order
    end
  in
  dfs (entry_block func);
  !order

let compute func =
  let rpo = reverse_postorder_of func in
  let rpo_index = Hashtbl.create 32 in
  List.iteri (fun i b -> Hashtbl.replace rpo_index b.b_id i) rpo;
  let idoms = Hashtbl.create 32 in
  let entry = entry_block func in
  Hashtbl.replace idoms entry.b_id entry;
  (* Cooper-Harvey-Kennedy fixed point over RPO. *)
  let intersect b1 b2 =
    let rec walk f1 f2 =
      if f1 == f2 then f1
      else begin
        let i1 = Hashtbl.find rpo_index f1.b_id in
        let i2 = Hashtbl.find rpo_index f2.b_id in
        if i1 > i2 then walk (Hashtbl.find idoms f1.b_id) f2
        else walk f1 (Hashtbl.find idoms f2.b_id)
      end
    in
    walk b1 b2
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if not (b == entry) then begin
          let preds =
            List.filter
              (fun p ->
                Hashtbl.mem rpo_index p.b_id && Hashtbl.mem idoms p.b_id)
              (predecessors func b)
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idoms b.b_id with
            | Some old when old == new_idom -> ()
            | _ ->
              Hashtbl.replace idoms b.b_id new_idom;
              changed := true)
        end)
      rpo
  done;
  (* Dominance frontiers (per CHK). *)
  let frontiers = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace frontiers b.b_id []) rpo;
  List.iter
    (fun b ->
      let preds =
        List.filter (fun p -> Hashtbl.mem idoms p.b_id) (predecessors func b)
      in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec up runner =
              if not (runner == Hashtbl.find idoms b.b_id) then begin
                let fs = Hashtbl.find frontiers runner.b_id in
                if not (List.exists (fun x -> x == b) fs) then
                  Hashtbl.replace frontiers runner.b_id (b :: fs);
                up (Hashtbl.find idoms runner.b_id)
              end
            in
            up p)
          preds)
    rpo;
  let kids = Hashtbl.create 32 in
  List.iter
    (fun b ->
      if not (b == entry) then begin
        match Hashtbl.find_opt idoms b.b_id with
        | Some parent ->
          let existing =
            Option.value (Hashtbl.find_opt kids parent.b_id) ~default:[]
          in
          Hashtbl.replace kids parent.b_id (b :: existing)
        | None -> ()
      end)
    rpo;
  { func; rpo; rpo_index; idoms; frontiers; kids }

let reverse_postorder t = t.rpo
let is_reachable t b = Hashtbl.mem t.rpo_index b.b_id

let idom t b =
  if b == entry_block t.func then None
  else Hashtbl.find_opt t.idoms b.b_id

let dominates t a b =
  if not (is_reachable t b) then false
  else begin
    let rec up x = if x == a then true else match idom t x with
      | None -> false
      | Some parent -> up parent
    in
    up b
  end

let strictly_dominates t a b = (not (a == b)) && dominates t a b

let dominance_frontier t b =
  Option.value (Hashtbl.find_opt t.frontiers b.b_id) ~default:[]

let children t b = Option.value (Hashtbl.find_opt t.kids b.b_id) ~default:[]
