(** The LoopUnroll pass (paper §2.1/§2.2): consumes [llvm.loop.unroll.*]
    metadata planted by either CodeGen path and performs the duplication
    "only at that point" — no copies exist in the AST or in the IR before
    the mid-end runs.

    Three strategies, chosen per loop:

    - {b full unroll} for affine loops with a known constant trip count
      within the size threshold: the loop disappears into straight-line
      copies;
    - {b partial unroll with a remainder loop} (the paper's Listing 1
      shape): a guarded unrolled loop [while (iv + (k-1)*step cmp bound)]
      executing [k] body copies back to back, falling through into the
      original loop which drains the remaining iterations;
    - {b skip} when the loop is not recognisably affine or its header is
      not pure — the metadata is dropped and the loop left intact, which is
      always semantics-preserving.

    [llvm.loop.unroll.enable] (the heuristic mode of [#pragma omp unroll])
    picks between the above from the body size, like LLVM's profitability
    logic. *)

type stats = {
  fully_unrolled : int;
  partially_unrolled : int;
  skipped : int;
}

val empty_stats : stats

val run_func : ?threshold:int -> Mc_ir.Ir.func -> stats
(** [threshold] caps the number of cloned instructions per full unroll
    (default 4096). *)

val run : ?threshold:int -> Mc_ir.Ir.modul -> stats

val choose_heuristic_factor : body_size:int -> trip_count:int64 option -> int option
(** Exposed for the C4/A3 benchmarks: [None] means full unroll is
    preferred, [Some 1] means don't unroll. *)
