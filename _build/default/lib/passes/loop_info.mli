(** Natural-loop detection over the dominator tree: a back edge
    [latch -> header] where the header dominates the latch defines a loop
    whose body is everything that reaches the latch without passing the
    header. *)

open Mc_ir

type loop = {
  header : Ir.block;
  latches : Ir.block list; (* sources of back edges *)
  blocks : Ir.block list; (* header first *)
  preheader : Ir.block option; (* unique non-loop predecessor of the header *)
  exits : Ir.block list; (* blocks outside the loop targeted from inside *)
}

val find_loops : Dominators.t -> Ir.func -> loop list
(** All natural loops, outermost-first within each nest; loops sharing a
    header are merged (as in LLVM). *)

val loop_contains : loop -> Ir.block -> bool

val single_latch : loop -> Ir.block option

val loop_with_unroll_request : Dominators.t -> Ir.func -> (loop * Ir.unroll_md) list
(** Loops whose latch carries [llvm.loop.unroll.*] metadata, paired with it;
    what the LoopUnroll pass iterates over. *)
