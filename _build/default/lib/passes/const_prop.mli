(** Constant propagation and branch folding.  Evaluates instructions whose
    operands are constants (sharing the IRBuilder's folding primitives so
    the two layers agree bit-for-bit), rewrites their uses, and folds
    conditional branches on constants, maintaining phi nodes of the dropped
    edges. *)

val run_func : Mc_ir.Ir.func -> bool
(** [true] when anything changed. *)

val run : Mc_ir.Ir.modul -> bool
