open Mc_ir.Ir

type loop = {
  header : block;
  latches : block list;
  blocks : block list;
  preheader : block option;
  exits : block list;
}

let loop_contains loop b = List.exists (fun x -> x == b) loop.blocks

let single_latch loop =
  match loop.latches with [ l ] -> Some l | _ -> None

let find_loops dom func =
  (* Group back edges by header. *)
  let back_edges = Hashtbl.create 8 in
  let headers = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          if Dominators.dominates dom succ b then begin
            if not (Hashtbl.mem back_edges succ.b_id) then
              headers := succ :: !headers;
            Hashtbl.replace back_edges succ.b_id
              (b :: Option.value (Hashtbl.find_opt back_edges succ.b_id) ~default:[])
          end)
        (successors b))
    (Dominators.reverse_postorder dom);
  let build header =
    let latches = Hashtbl.find back_edges header.b_id in
    (* Body: reverse reachability from the latches, stopping at the header. *)
    let in_loop = Hashtbl.create 16 in
    Hashtbl.replace in_loop header.b_id header;
    let rec pull b =
      if not (Hashtbl.mem in_loop b.b_id) then begin
        Hashtbl.replace in_loop b.b_id b;
        List.iter pull (predecessors func b)
      end
    in
    List.iter pull latches;
    let blocks =
      header
      :: List.filter
           (fun b -> (not (b == header)) && Hashtbl.mem in_loop b.b_id)
           (Dominators.reverse_postorder dom)
    in
    let outside_preds =
      List.filter
        (fun p -> not (Hashtbl.mem in_loop p.b_id))
        (predecessors func header)
    in
    let preheader = match outside_preds with [ p ] -> Some p | _ -> None in
    let exits =
      List.sort_uniq
        (fun a b -> compare a.b_id b.b_id)
        (List.concat_map
           (fun b ->
             List.filter (fun s -> not (Hashtbl.mem in_loop s.b_id)) (successors b))
           blocks)
    in
    { header; latches; blocks; preheader; exits }
  in
  let loops = List.map build (List.rev !headers) in
  (* Outermost-first: more blocks first among nested loops. *)
  List.sort (fun a b -> compare (List.length b.blocks) (List.length a.blocks)) loops

let loop_with_unroll_request dom func =
  List.filter_map
    (fun loop ->
      let md =
        List.find_map (fun l -> l.b_loop_md.md_unroll) loop.latches
      in
      Option.map (fun m -> (loop, m)) md)
    (find_loops dom func)
