(** Promotion of scalar allocas to SSA registers (LLVM's mem2reg).

    The classic Clang-style CodeGen path emits every local variable —
    including loop counters — as an alloca with loads and stores.  Promoting
    them to phi-based SSA is what makes loop trip counts recognisable to the
    mid-end LoopUnroll pass (paper §2.2: the [LoopHintAttr]-tagged loops are
    unrolled after, not before, this kind of cleanup). *)

val run_func : Mc_ir.Ir.func -> int
(** Returns the number of allocas promoted. *)

val run : Mc_ir.Ir.modul -> int
