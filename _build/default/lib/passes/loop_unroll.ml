open Mc_ir.Ir

type stats = { fully_unrolled : int; partially_unrolled : int; skipped : int }

let empty_stats = { fully_unrolled = 0; partially_unrolled = 0; skipped = 0 }

let clear_unroll_md loop =
  List.iter
    (fun l -> l.b_loop_md <- { l.b_loop_md with md_unroll = None })
    loop.Loop_info.latches

let header_phis header = block_phis header

let latch_incoming phi latch =
  match phi.i_kind with
  | Phi { incoming } -> (
    match phi_incoming_for_pred incoming latch with
    | Some v -> v
    | None -> invalid_arg "phi has no latch incoming")
  | _ -> invalid_arg "not a phi"

let body_size loop =
  List.fold_left
    (fun acc b -> acc + List.length (block_insts b))
    0 loop.Loop_info.blocks

(* Values flowing out of the loop must be loop-invariant or header phis;
   anything else (e.g. an exit-block phi consuming the header's cmp) makes
   the rewrite unsafe, so we bail. *)
let exit_values_manageable (a : Trip_count.affine) func loop =
  let in_chain b = List.exists (fun c -> c == b) a.Trip_count.header_chain in
  let defined_in_header_non_phi v =
    match v with
    | Inst_ref i -> (
      match (i.i_parent, i.i_kind) with
      | Some p, Phi _ when p == loop.Loop_info.header -> false
      | Some p, _ when in_chain p -> true
      | _ -> false)
    | _ -> false
  in
  List.for_all
    (fun b ->
      Loop_info.loop_contains loop b
      || List.for_all
           (fun i ->
             List.for_all
               (fun v -> not (defined_in_header_non_phi v))
               (inst_operands i))
           (block_insts b)
         && List.for_all
              (fun v -> not (defined_in_header_non_phi v))
              (terminator_operands b.b_term))
    func.f_blocks

(* Add phi incomings in out-of-loop successors for the edges a cloned block
   introduces: the clone contributes the mapped value of what the original
   contributed. *)
let patch_exit_phis loop mapping originals =
  List.iter
    (fun ob ->
      let cb = Clone.mapped_block mapping ob in
      List.iter
        (fun succ ->
          if not (Loop_info.loop_contains loop succ) then
            List.iter
              (fun phi ->
                match phi.i_kind with
                | Phi { incoming } -> (
                  match phi_incoming_for_pred incoming ob with
                  | Some v ->
                    phi.i_kind <-
                      Phi
                        {
                          incoming =
                            incoming @ [ (Clone.mapped_value mapping v, cb) ];
                        }
                  | None -> ())
                | _ -> ())
              (block_phis succ))
        (successors cb))
    originals

let remove_phi_incomings_for func deleted =
  let is_deleted b = List.exists (fun d -> d == b) deleted in
  List.iter
    (fun b ->
      List.iter
        (fun phi ->
          match phi.i_kind with
          | Phi { incoming } ->
            phi.i_kind <-
              Phi
                { incoming = List.filter (fun (_, ib) -> not (is_deleted ib)) incoming }
          | _ -> ())
        (block_phis b))
    (List.filter (fun b -> not (is_deleted b)) func.f_blocks)

(* ---- full unrolling ------------------------------------------------------ *)

let full_unroll func loop (a : Trip_count.affine) n =
  let header = loop.Loop_info.header in
  let latch = Option.get (Loop_info.single_latch loop) in
  let preheader = Option.get loop.Loop_info.preheader in
  let in_chain b = List.exists (fun c -> c == b) a.Trip_count.header_chain in
  let body = List.filter (fun b -> not (in_chain b)) loop.Loop_info.blocks in
  let phis = header_phis header in
  (* prev.(phi id) = the value of that loop-carried variable entering the
     next copy. *)
  let prev = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.i_kind with
      | Phi { incoming } ->
        Hashtbl.replace prev p.i_id
          (Option.get (phi_incoming_for_pred incoming preheader))
      | _ -> ())
    phis;
  let seed v =
    match v with
    | Inst_ref i when Hashtbl.mem prev i.i_id -> Hashtbl.find prev i.i_id
    | _ -> v
  in
  let last_tail = ref None in
  (* block whose header-successor awaits re-pointing *)
  let hook_entry entry =
    match !last_tail with
    | None -> replace_successor preheader ~from:header ~into:entry
    | Some tail -> replace_successor tail ~from:header ~into:entry
  in
  for j = 0 to Int64.to_int n - 1 do
    let mapping =
      Clone.clone_region func ~blocks:body ~seed
        ~suffix:(Printf.sprintf ".unroll%d" j)
    in
    patch_exit_phis loop mapping body;
    hook_entry (Clone.mapped_block mapping a.Trip_count.body_succ);
    last_tail := Some (Clone.mapped_block mapping latch);
    (* Advance the loop-carried values simultaneously. *)
    let updated =
      List.map
        (fun p -> (p.i_id, Clone.mapped_value mapping (latch_incoming p latch)))
        phis
    in
    List.iter (fun (id, v) -> Hashtbl.replace prev id v) updated
  done;
  (* Fall through to the exit, and propagate final values of the loop
     phis to their uses outside the loop. *)
  hook_entry a.Trip_count.exit_succ;
  let deleted = loop.Loop_info.blocks in
  let outside b = not (List.exists (fun d -> d == b) deleted) in
  List.iter
    (fun p ->
      replace_uses_in_func func ~from:(Inst_ref p) ~into:(Hashtbl.find prev p.i_id)
        ~where:outside)
    phis;
  (* The exit block's phis must see the fall-through edge as coming from the
     last copy (or the preheader when n = 0) instead of the header. *)
  let new_pred = match !last_tail with Some t -> t | None -> preheader in
  List.iter
    (fun phi ->
      match phi.i_kind with
      | Phi { incoming } ->
        phi.i_kind <-
          Phi
            {
              incoming =
                List.map
                  (fun (v, b) -> if b == header then (v, new_pred) else (v, b))
                  incoming;
            }
      | _ -> ())
    (block_phis a.Trip_count.exit_succ);
  remove_phi_incomings_for func deleted;
  remove_blocks func deleted

(* ---- partial unrolling (Listing 1 shape) --------------------------------- *)

let partial_unroll func loop (a : Trip_count.affine) k =
  let header = loop.Loop_info.header in
  let latch = Option.get (Loop_info.single_latch loop) in
  let preheader = Option.get loop.Loop_info.preheader in
  let in_chain b = List.exists (fun c -> c == b) a.Trip_count.header_chain in
  let body = List.filter (fun b -> not (in_chain b)) loop.Loop_info.blocks in
  let phis = header_phis header in
  let iv_ty = a.Trip_count.iv.i_ty in
  (* Guard header: carries a phi per loop phi and tests whether k full
     iterations remain: iv + (k-1)*step cmp bound. *)
  let uh = create_block ~name:(header.b_name ^ ".unrolled") func in
  let guard_phis = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.i_kind with
      | Phi { incoming } ->
        let init = Option.get (phi_incoming_for_pred incoming preheader) in
        let gp =
          mk_inst ~name:(p.i_name ^ ".u") ~ty:p.i_ty
            (Phi { incoming = [ (init, preheader) ] })
        in
        append_inst uh gp;
        Hashtbl.replace guard_phis p.i_id gp
      | _ -> ())
    phis;
  let giv = Inst_ref (Hashtbl.find guard_phis a.Trip_count.iv.i_id) in
  let lookahead =
    Int64.mul (Int64.of_int (k - 1)) a.Trip_count.step
  in
  let t = mk_inst ~name:"iv.ahead" ~ty:iv_ty (Binop (Add, giv, Const_int (iv_ty, lookahead))) in
  append_inst uh t;
  let cmp =
    mk_inst ~name:"unroll.guard" ~ty:I1
      (Icmp (a.Trip_count.cmp, Inst_ref t, a.Trip_count.bound))
  in
  append_inst uh cmp;
  (* Entry: the preheader now reaches the guard; the guard falls back to the
     original (remainder) loop. *)
  replace_successor preheader ~from:header ~into:uh;
  List.iter
    (fun p ->
      match p.i_kind with
      | Phi { incoming } ->
        p.i_kind <-
          Phi
            {
              incoming =
                List.map
                  (fun (v, b) ->
                    if b == preheader then
                      (Inst_ref (Hashtbl.find guard_phis p.i_id), uh)
                    else (v, b))
                  incoming;
            }
      | _ -> ())
    phis;
  (* The k body copies, chained. *)
  let prev = Hashtbl.create 8 in
  List.iter
    (fun p -> Hashtbl.replace prev p.i_id (Inst_ref (Hashtbl.find guard_phis p.i_id)))
    phis;
  let seed v =
    match v with
    | Inst_ref i when Hashtbl.mem prev i.i_id -> Hashtbl.find prev i.i_id
    | _ -> v
  in
  let first_entry = ref None in
  let last_tail = ref None in
  for j = 0 to k - 1 do
    let mapping =
      Clone.clone_region func ~blocks:body ~seed
        ~suffix:(Printf.sprintf ".unroll%d" j)
    in
    patch_exit_phis loop mapping body;
    let entry = Clone.mapped_block mapping a.Trip_count.body_succ in
    (match !last_tail with
    | None -> first_entry := Some entry
    | Some tail -> replace_successor tail ~from:header ~into:entry);
    last_tail := Some (Clone.mapped_block mapping latch);
    let updated =
      List.map
        (fun p -> (p.i_id, Clone.mapped_value mapping (latch_incoming p latch)))
        phis
    in
    List.iter (fun (id, v) -> Hashtbl.replace prev id v) updated
  done;
  let first_entry = Option.get !first_entry in
  let last_tail = Option.get !last_tail in
  uh.b_term <- Cond_br (Inst_ref cmp, first_entry, header);
  (* Back edge of the unrolled loop, feeding the guard phis. *)
  replace_successor last_tail ~from:header ~into:uh;
  List.iter
    (fun p ->
      let gp = Hashtbl.find guard_phis p.i_id in
      match gp.i_kind with
      | Phi { incoming } ->
        gp.i_kind <-
          Phi { incoming = incoming @ [ (Hashtbl.find prev p.i_id, last_tail) ] }
      | _ -> ())
    phis

(* ---- driver --------------------------------------------------------------- *)

let choose_heuristic_factor ~body_size ~trip_count =
  match trip_count with
  | Some n when Int64.compare n 16L <= 0 && body_size * Int64.to_int n <= 1024 ->
    None (* full *)
  | _ ->
    let candidates = [ 8; 4; 2 ] in
    let fits f = body_size * f <= 128 in
    (match List.find_opt fits candidates with
    | Some f -> Some f
    | None -> Some 1)

let run_func ?(threshold = 4096) func =
  if func.f_is_decl then empty_stats
  else begin
    let stats = ref empty_stats in
    let skip () = { !stats with skipped = !stats.skipped + 1 } in
    (* Unrolling invalidates the analyses, so re-scan after each rewrite. *)
    let rec process () =
      let dom = Dominators.compute func in
      let requests = Loop_info.loop_with_unroll_request dom func in
      match requests with
      | [] -> ()
      | (loop, md) :: _ ->
        clear_unroll_md loop;
        let retry = ref true in
        (match Trip_count.analyze func loop with
        | Some a
          when Trip_count.header_is_pure a loop
               && exit_values_manageable a func loop
               && Option.is_some loop.Loop_info.preheader
               && Option.is_some (Loop_info.single_latch loop) -> (
          let tc = Trip_count.constant_trip_count a in
          let size = body_size loop in
          let do_full n =
            if Int64.to_int n * size <= threshold then begin
              full_unroll func loop a n;
              stats := { !stats with fully_unrolled = !stats.fully_unrolled + 1 }
            end
            else stats := skip ()
          in
          let direction_ok =
            let s = a.Trip_count.step in
            match a.Trip_count.cmp with
            | Islt | Isle | Iult | Iule -> Int64.compare s 0L > 0
            | Isgt | Isge | Iugt | Iuge -> Int64.compare s 0L < 0
            | Ieq | Ine -> false
          in
          let do_partial k =
            if k <= 1 || not direction_ok then stats := skip ()
            else begin
              partial_unroll func loop a k;
              stats :=
                { !stats with partially_unrolled = !stats.partially_unrolled + 1 }
            end
          in
          match md with
          | Unroll_disable -> stats := skip ()
          | Unroll_full -> (
            match tc with Some n -> do_full n | None -> stats := skip ())
          | Unroll_count k -> (
            match tc with
            | Some n when Int64.compare n (Int64.of_int k) <= 0 -> do_full n
            | _ -> do_partial k)
          | Unroll_enable -> (
            match choose_heuristic_factor ~body_size:size ~trip_count:tc with
            | None -> (
              match tc with Some n -> do_full n | None -> stats := skip ())
            | Some 1 -> stats := skip ()
            | Some k -> do_partial k))
        | Some _ | None ->
          stats := skip ();
          retry := true);
        if !retry then process ()
    in
    process ();
    !stats
  end

let run ?threshold m =
  List.fold_left
    (fun acc f ->
      let s = run_func ?threshold f in
      {
        fully_unrolled = acc.fully_unrolled + s.fully_unrolled;
        partially_unrolled = acc.partially_unrolled + s.partially_unrolled;
        skipped = acc.skipped + s.skipped;
      })
    empty_stats
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
