(** CFG cleanup: removes unreachable blocks (maintaining phis), merges
    straight-line block pairs, and forwards through empty blocks.  Runs to a
    fixed point. *)

val run_func : Mc_ir.Ir.func -> bool
val run : Mc_ir.Ir.modul -> bool
