type report = {
  pass_results : (string * bool) list;
  unroll_stats : Loop_unroll.stats;
}

let o0 = [ "simplifycfg"; "dce" ]

let o1 =
  [
    "simplifycfg";
    "mem2reg";
    "constprop";
    "dce";
    "loop-unroll";
    "constprop";
    "simplifycfg";
    "dce";
  ]

let available =
  [ "simplifycfg"; "mem2reg"; "constprop"; "dce"; "loop-unroll" ]

let run ?(verify_between = false) ~passes m =
  let unroll_stats = ref Loop_unroll.empty_stats in
  let results =
    List.map
      (fun name ->
        let changed =
          match name with
          | "simplifycfg" -> Simplify_cfg.run m
          | "mem2reg" -> Mem2reg.run m > 0
          | "constprop" -> Const_prop.run m
          | "dce" -> Dce.run m
          | "loop-unroll" ->
            let s = Loop_unroll.run m in
            unroll_stats :=
              {
                Loop_unroll.fully_unrolled =
                  !unroll_stats.Loop_unroll.fully_unrolled + s.Loop_unroll.fully_unrolled;
                partially_unrolled =
                  !unroll_stats.Loop_unroll.partially_unrolled
                  + s.Loop_unroll.partially_unrolled;
                skipped = !unroll_stats.Loop_unroll.skipped + s.Loop_unroll.skipped;
              };
            s.Loop_unroll.fully_unrolled > 0 || s.Loop_unroll.partially_unrolled > 0
          | other -> invalid_arg (Printf.sprintf "unknown pass '%s'" other)
        in
        if verify_between then begin
          match Mc_ir.Verifier.check m with
          | Ok () -> ()
          | Error e ->
            invalid_arg
              (Printf.sprintf "IR verification failed after pass '%s':\n%s" name e)
        end;
        (name, changed))
      passes
  in
  { pass_results = results; unroll_stats = !unroll_stats }
