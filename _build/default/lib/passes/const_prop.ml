open Mc_ir.Ir
module Builder = Mc_ir.Builder

let fold_inst i =
  match i.i_kind with
  | Binop (op, Const_int (ty, a), Const_int (_, b)) ->
    Option.map (fun v -> Const_int (ty, v)) (Builder.fold_int_binop_const op ty a b)
  | Binop (op, Const_float (ty, a), Const_float (_, b)) ->
    Option.map (fun v -> Const_float (ty, v)) (Builder.fold_float_binop_const op a b)
  | Icmp (op, Const_int (ty, a), Const_int (_, b)) ->
    Some (bool_const (Builder.eval_icmp_const op ty a b))
  | Fcmp (op, Const_float (_, a), Const_float (_, b)) ->
    Some (bool_const (Builder.eval_fcmp_const op a b))
  | Cast (op, (Const_int _ | Const_float _ as v)) ->
    Builder.fold_cast_const op v i.i_ty
  | Select (Const_int (I1, c), a, b) -> Some (if Int64.equal c 1L then a else b)
  (* (zext i1 x) != 0  ==>  x   — re-exposes boolean conditions. *)
  | Icmp (Ine, Inst_ref { i_kind = Cast (Zext, v); _ }, Const_int (_, 0L))
    when value_ty v = I1 ->
    Some v
  | Icmp (Ieq, Inst_ref { i_kind = Cast (Zext, v); _ }, Const_int (_, 0L))
    when value_ty v = I1 -> (
    match v with
    | Const_int (I1, b) -> Some (bool_const (Int64.equal b 0L))
    | _ -> None)
  | Phi { incoming = [ (v, _) ] } -> Some v (* single-predecessor phi *)
  | Phi { incoming = (v, _) :: rest }
    when List.for_all (fun (w, _) -> value_equal v w) rest ->
    Some v
  | _ -> None

let remove_phi_edge target ~pred =
  List.iter
    (fun phi ->
      match phi.i_kind with
      | Phi { incoming } ->
        phi.i_kind <-
          Phi { incoming = List.filter (fun (_, b) -> not (b == pred)) incoming }
      | _ -> ())
    (block_phis target)

let run_func f =
  if f.f_is_decl then false
  else begin
    let changed_ever = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      (* Fold instructions. *)
      let replacement = Hashtbl.create 16 in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match fold_inst i with
              | Some v -> Hashtbl.replace replacement i.i_id v
              | None -> ())
            (block_insts b))
        f.f_blocks;
      if Hashtbl.length replacement > 0 then begin
        continue_ := true;
        changed_ever := true;
        let rec resolve v =
          match v with
          | Inst_ref i when Hashtbl.mem replacement i.i_id ->
            resolve (Hashtbl.find replacement i.i_id)
          | _ -> v
        in
        List.iter
          (fun b ->
            List.iter
              (fun i ->
                if not (Hashtbl.mem replacement i.i_id) then
                  match i.i_kind with
                  | Phi { incoming } ->
                    i.i_kind <-
                      Phi
                        {
                          incoming =
                            List.map (fun (v, ib) -> (resolve v, ib)) incoming;
                        }
                  | _ -> map_inst_operands resolve i)
              (block_insts b);
            map_terminator_operands resolve b;
            set_block_insts b
              (List.filter
                 (fun i -> not (Hashtbl.mem replacement i.i_id))
                 (block_insts b)))
          f.f_blocks
      end;
      (* Fold constant conditional branches, dropping the dead edge from the
         target's phis. *)
      List.iter
        (fun b ->
          match b.b_term with
          | Cond_br (Const_int (I1, c), t, e) ->
            let taken, dropped = if Int64.equal c 1L then (t, e) else (e, t) in
            b.b_term <- Br taken;
            if not (dropped == taken) then remove_phi_edge dropped ~pred:b;
            continue_ := true;
            changed_ever := true
          | Cond_br (_, t, e) when t == e ->
            b.b_term <- Br t;
            continue_ := true;
            changed_ever := true
          | _ -> ())
        f.f_blocks
    done;
    !changed_ever
  end

let run m =
  List.fold_left
    (fun acc f -> run_func f || acc)
    false
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
