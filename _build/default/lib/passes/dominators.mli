(** Dominator tree (Cooper–Harvey–Kennedy "A Simple, Fast Dominance
    Algorithm") and dominance frontiers, the analyses underpinning mem2reg
    and natural-loop detection in the mid-end. *)

open Mc_ir

type t

val compute : Ir.func -> t

val reverse_postorder : t -> Ir.block list
(** Reachable blocks only, entry first. *)

val is_reachable : t -> Ir.block -> bool
val idom : t -> Ir.block -> Ir.block option
(** The immediate dominator; [None] for the entry block (and unreachable
    blocks). *)

val dominates : t -> Ir.block -> Ir.block -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)

val strictly_dominates : t -> Ir.block -> Ir.block -> bool

val dominance_frontier : t -> Ir.block -> Ir.block list

val children : t -> Ir.block -> Ir.block list
(** Dominator-tree children. *)
