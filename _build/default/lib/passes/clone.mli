(** Cloning of CFG regions, the machinery under loop unrolling.

    [clone_region] deep-copies a set of blocks into the same function.
    Values defined inside the region are remapped to their clones; values
    defined outside go through [seed] (identity by default), which is how
    the unroller substitutes the previous copy's loop-carried values for the
    header phis. *)

open Mc_ir

type mapping

val clone_region :
  Ir.func ->
  blocks:Ir.block list ->
  seed:(Ir.value -> Ir.value) ->
  suffix:string ->
  mapping

val mapped_block : mapping -> Ir.block -> Ir.block
(** Identity for blocks outside the region. *)

val mapped_value : mapping -> Ir.value -> Ir.value
(** Applies the region map, falling back to [seed]. *)

val cloned_blocks : mapping -> Ir.block list
(** The new blocks, in the order of the originals. *)
