open Mc_ir.Ir

type mapping = {
  bmap : (int, block) Hashtbl.t;
  imap : (int, inst) Hashtbl.t;
  seed : value -> value;
  clones : block list;
}

let mapped_block m b =
  match Hashtbl.find_opt m.bmap b.b_id with Some nb -> nb | None -> b

let mapped_value m v =
  match v with
  | Inst_ref i -> (
    match Hashtbl.find_opt m.imap i.i_id with
    | Some ni -> Inst_ref ni
    | None -> m.seed v)
  | _ -> m.seed v

let clone_region f ~blocks ~seed ~suffix =
  let m = { bmap = Hashtbl.create 16; imap = Hashtbl.create 64; seed; clones = [] } in
  (* Phase 1: shells.  All instructions are created with their original
     operands so that intra-region forward references (phi back edges of
     nested loops) resolve in phase 2. *)
  let clones =
    List.map
      (fun b ->
        let nb = create_block ~name:(b.b_name ^ suffix) f in
        nb.b_loop_md <- b.b_loop_md;
        Hashtbl.replace m.bmap b.b_id nb;
        List.iter
          (fun i ->
            let ni = mk_inst ~name:i.i_name ~ty:i.i_ty i.i_kind in
            Hashtbl.replace m.imap i.i_id ni;
            append_inst nb ni)
          (block_insts b);
        (b, nb))
      blocks
  in
  (* Phase 2: remap operands, phi incoming blocks, and terminators. *)
  List.iter
    (fun (b, nb) ->
      List.iter
        (fun ni ->
          match ni.i_kind with
          | Phi { incoming } ->
            ni.i_kind <-
              Phi
                {
                  incoming =
                    List.map
                      (fun (v, ib) -> (mapped_value m v, mapped_block m ib))
                      incoming;
                }
          | _ -> map_inst_operands (mapped_value m) ni)
        (block_insts nb);
      nb.b_term <-
        (match b.b_term with
        | Ret v -> Ret (Option.map (mapped_value m) v)
        | Br t -> Br (mapped_block m t)
        | Cond_br (c, t, e) ->
          Cond_br (mapped_value m c, mapped_block m t, mapped_block m e)
        | Unreachable -> Unreachable
        | No_term -> No_term))
    clones;
  { m with clones = List.map snd clones }

let cloned_blocks m = m.clones
