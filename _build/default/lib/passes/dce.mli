(** Dead code elimination: removes side-effect-free instructions whose
    results are never used, transitively. *)

val run_func : Mc_ir.Ir.func -> bool
val run : Mc_ir.Ir.modul -> bool
