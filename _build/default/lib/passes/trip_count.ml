open Mc_ir.Ir
module Int_ops = Mc_support.Int_ops

type affine = {
  iv : inst;
  init : value;
  step : int64;
  latch_update : inst;
  bound : value;
  cmp : icmp;
  exiting : block;
  header_chain : block list;
  body_succ : block;
  exit_succ : block;
}

let commute = function
  | Islt -> Isgt
  | Isle -> Isge
  | Isgt -> Islt
  | Isge -> Isle
  | Iult -> Iugt
  | Iule -> Iuge
  | Iugt -> Iult
  | Iuge -> Iule
  | Ieq -> Ieq
  | Ine -> Ine

let defined_in_loop loop v =
  match v with
  | Inst_ref i -> (
    match i.i_parent with
    | Some b -> Loop_info.loop_contains loop b
    | None -> false)
  | _ -> false

let analyze func loop =
  let header = loop.Loop_info.header in
  (* Follow the straight-line chain from the header to the exiting block
     (for the canonical-loop skeleton: header -> cond). *)
  let rec chain acc b =
    match b.b_term with
    | Cond_br _ -> Some (List.rev (b :: acc))
    | Br next
      when Loop_info.loop_contains loop next
           && (not (next == header))
           && List.length (predecessors func next) = 1 ->
      chain (b :: acc) next
    | _ -> None
  in
  match (Loop_info.single_latch loop, loop.Loop_info.preheader, chain [] header) with
  | Some latch, Some preheader, Some header_chain -> (
    let exiting = List.nth header_chain (List.length header_chain - 1) in
    (* The loop must exit from this chain and continue into the body. *)
    match exiting.b_term with
    | Cond_br (Inst_ref cond, t, e) -> (
      let body_succ, exit_succ, negated =
        if Loop_info.loop_contains loop t && not (Loop_info.loop_contains loop e)
        then (t, e, false)
        else if
          Loop_info.loop_contains loop e && not (Loop_info.loop_contains loop t)
        then (e, t, true)
        else (t, e, true)
      in
      if
        not
          (Loop_info.loop_contains loop body_succ
          && not (Loop_info.loop_contains loop exit_succ))
      then None
      else if negated then None (* inverted conditions are not recognised *)
      else begin
        match cond.i_kind with
        | Icmp (cmp0, lhs, rhs) -> (
          (* Find the affine phi on one side. *)
          let as_affine v =
            match v with
            | Inst_ref phi when Loop_info.loop_contains loop header -> (
              match phi.i_kind with
              | Phi { incoming } -> (
                match
                  ( phi.i_parent,
                    phi_incoming_for_pred incoming preheader,
                    phi_incoming_for_pred incoming latch )
                with
                | Some pb, Some init, Some (Inst_ref upd) when pb == header -> (
                  match upd.i_kind with
                  | Binop (Add, a, Const_int (_, step))
                    when value_equal a (Inst_ref phi) ->
                    Some (phi, init, step, upd)
                  | Binop (Add, Const_int (_, step), a)
                    when value_equal a (Inst_ref phi) ->
                    Some (phi, init, step, upd)
                  | Binop (Sub, a, Const_int (_, step))
                    when value_equal a (Inst_ref phi) ->
                    Some (phi, init, Int64.neg step, upd)
                  | _ -> None)
                | _ -> None)
              | _ -> None)
            | _ -> None
          in
          match (as_affine lhs, as_affine rhs) with
          | Some (iv, init, step, latch_update), None ->
            if defined_in_loop loop rhs then None
            else
              Some
                { iv; init; step; latch_update; bound = rhs; cmp = cmp0;
                  exiting; header_chain; body_succ; exit_succ }
          | None, Some (iv, init, step, latch_update) ->
            if defined_in_loop loop lhs then None
            else
              Some
                { iv; init; step; latch_update; bound = lhs; cmp = commute cmp0;
                  exiting; header_chain; body_succ; exit_succ }
          | _ -> None)
        | _ -> None
      end)
    | _ -> None)
  | _ -> None

let constant_trip_count a =
  match (a.init, a.bound) with
  | Const_int (ty, init), Const_int (_, bound) ->
    let s = a.step in
    if Int64.equal s 0L then None
    else begin
      let ws = int_width ~signed:true ty in
      let wu = int_width ~signed:false ty in
      let count_up ~lt ~inclusive lo hi =
        (* iterations of: for (x = lo; x < hi (or <=); x += s), s > 0 *)
        ignore lt;
        let hi = if inclusive then Int64.add hi 1L else hi in
        if Int64.compare s 0L <= 0 then None
        else if Int64.compare lo hi >= 0 then Some 0L
        else begin
          let span = Int64.sub hi lo in
          let c = Int64.div (Int64.add span (Int64.sub s 1L)) s in
          if Int64.compare c 0x4000000000000000L > 0 then None else Some c
        end
      in
      let count_down ~inclusive hi lo =
        let lo = if inclusive then Int64.sub lo 1L else lo in
        let s = Int64.neg s in
        if Int64.compare s 0L <= 0 then None
        else if Int64.compare hi lo <= 0 then Some 0L
        else begin
          let span = Int64.sub hi lo in
          Some (Int64.div (Int64.add span (Int64.sub s 1L)) s)
        end
      in
      let unsigned_norm v = Int64.logand v (
        if wu.Int_ops.bits >= 64 then -1L
        else Int64.sub (Int64.shift_left 1L wu.Int_ops.bits) 1L)
      in
      (* Unsigned values whose top bit survives into the Int64 sign bit
         would corrupt the signed span arithmetic below; give up on them. *)
      let too_big v = Int64.compare (unsigned_norm v) 0L < 0 in
      match a.cmp with
      | (Iult | Iule | Iugt | Iuge) when too_big init || too_big bound -> None
      | Islt -> count_up ~lt:true ~inclusive:false init bound
      | Isle -> count_up ~lt:true ~inclusive:true init bound
      | Isgt -> count_down ~inclusive:false init bound
      | Isge -> count_down ~inclusive:true init bound
      | Iult -> count_up ~lt:true ~inclusive:false (unsigned_norm init) (unsigned_norm bound)
      | Iule -> count_up ~lt:true ~inclusive:true (unsigned_norm init) (unsigned_norm bound)
      | Iugt -> count_down ~inclusive:false (unsigned_norm init) (unsigned_norm bound)
      | Iuge -> count_down ~inclusive:true (unsigned_norm init) (unsigned_norm bound)
      | Ine ->
        let diff = Int_ops.sub ws bound init in
        if Int64.equal (Int64.rem diff s) 0L && Int64.compare (Int64.div diff s) 0L >= 0
        then Some (Int64.div diff s)
        else None
      | Ieq -> None
    end
  | _ -> None

let header_is_pure a loop =
  let in_chain b = List.exists (fun c -> c == b) a.header_chain in
  let non_phi =
    List.concat_map
      (fun b ->
        List.filter
          (fun i -> match i.i_kind with Phi _ -> false | _ -> true)
          (block_insts b))
      a.header_chain
  in
  let pure =
    List.for_all
      (fun i ->
        match i.i_kind with
        | Load _ | Store _ | Call _ | Alloca _ -> false
        | _ -> true)
      non_phi
  in
  (* No non-phi value computed in the chain may escape into the body (the
     unrolled copies skip the chain entirely). *)
  let ok_operand op =
    match op with
    | Inst_ref d -> (
      match d.i_parent with
      | Some p when in_chain p -> (
        match d.i_kind with Phi _ -> true | _ -> false)
      | _ -> true)
    | _ -> true
  in
  pure
  && List.for_all
       (fun b ->
         in_chain b
         || List.for_all
              (fun i -> List.for_all ok_operand (inst_operands i))
              (block_insts b)
            && List.for_all ok_operand (terminator_operands b.b_term))
       loop.Loop_info.blocks
