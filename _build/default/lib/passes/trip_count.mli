(** Affine induction-variable and trip-count analysis — a deliberately small
    stand-in for ScalarEvolution.  The canonical-loop path never needs it
    (the paper lists "identifiable loop trip count, without requiring
    analysis by ScalarEvolution" as a [CanonicalLoopInfo] invariant); the
    classic shadow-AST path does, because its [LoopHintAttr]-tagged loops
    arrive as ordinary while-shaped CFGs. *)

open Mc_ir

type affine = {
  iv : Ir.inst; (* the header phi *)
  init : Ir.value; (* incoming from the preheader *)
  step : int64; (* constant per-iteration increment (signed) *)
  latch_update : Ir.inst; (* the add feeding the back edge *)
  bound : Ir.value; (* loop-invariant comparison bound *)
  cmp : Ir.icmp; (* with [iv] as the left operand *)
  exiting : Ir.block; (* block whose cond_br leaves the loop *)
  header_chain : Ir.block list; (* header .. exiting, straight-line *)
  body_succ : Ir.block; (* taken when the loop continues *)
  exit_succ : Ir.block; (* taken when the loop exits *)
}

val analyze : Ir.func -> Loop_info.loop -> affine option
(** Recognises while-shaped loops, including the OpenMPIRBuilder skeleton
    where the comparison lives in a dedicated cond block: a straight-line
    chain of blocks from the header ends in the loop's only exiting
    conditional branch [icmp cmp iv bound] (commuted forms are normalised),
    the IV is an affine header phi, and the bound is defined outside the
    loop.  Returns [None] for anything else. *)

val constant_trip_count : affine -> int64 option
(** Exact iteration count when [init] and [bound] are constants.  Uses
    unsigned/signed semantics according to [cmp]; counts above 2^62 are
    reported as [None]. *)

val header_is_pure : affine -> Loop_info.loop -> bool
(** No loads, stores or calls among the header chain's non-phi
    instructions, and none of its non-phi values are used outside the chain
    — the safety condition for skipping the header check in unrolled
    copies. *)
