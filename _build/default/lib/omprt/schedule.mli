(** Worksharing schedule arithmetic of the simulated OpenMP runtime (libomp
    analogue).  Pure functions so they can be property-tested: the
    invariants are that chunks partition the iteration space exactly and
    never overlap. *)

type chunk = { lb : int64; ub : int64 }
(** Inclusive logical-iteration bounds; empty iff [ub < lb] (encoded as
    [ub = lb - 1]). *)

val static_unchunked : trip_count:int64 -> num_threads:int -> tid:int -> chunk
(** The [schedule(static)] division used by [__kmpc_for_static_init]:
    near-equal blocks, earlier threads get the larger ones. *)

val static_chunked :
  trip_count:int64 -> num_threads:int -> tid:int -> chunk_size:int64 ->
  (int64 * int64) * int64
(** [((lb, ub), stride)] of the thread's *first* chunk plus the stride to
    its next chunk, as the chunked static schedule hands out round-robin
    blocks. *)

type dynamic_state

val dynamic_create : trip_count:int64 -> chunk_size:int64 -> dynamic_state

val guided_create :
  trip_count:int64 -> chunk_min:int64 -> num_threads:int -> dynamic_state
(** The guided schedule: successive chunks shrink proportionally to the
    remaining iterations (libomp's remaining/(2*nthreads) rule), never
    below [chunk_min]. *)

val dynamic_next : dynamic_state -> chunk option
(** Grabs the next chunk from the shared queue; [None] when exhausted. *)

val coverage : (int64 * int64) list -> trip_count:int64 -> bool
(** Test helper: do the chunks exactly cover [0, trip_count) without
    overlap? *)
