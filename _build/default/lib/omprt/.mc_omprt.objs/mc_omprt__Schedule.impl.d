lib/omprt/schedule.ml: Int64 List
