lib/omprt/schedule.mli:
