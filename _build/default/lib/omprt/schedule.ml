type chunk = { lb : int64; ub : int64 }

let static_unchunked ~trip_count ~num_threads ~tid =
  let nth = Int64.of_int num_threads in
  let tid64 = Int64.of_int tid in
  if Int64.compare trip_count 0L <= 0 then { lb = 0L; ub = -1L }
  else begin
    (* libomp's static division: small = trip/nth, extras = trip mod nth;
       the first [extras] threads take [small+1] iterations. *)
    let small = Int64.unsigned_div trip_count nth in
    let extras = Int64.unsigned_rem trip_count nth in
    let big = Int64.add small 1L in
    if Int64.compare tid64 extras < 0 then begin
      let lb = Int64.mul tid64 big in
      { lb; ub = Int64.add lb small }
    end
    else begin
      let lb = Int64.add (Int64.mul extras big) (Int64.mul (Int64.sub tid64 extras) small) in
      { lb; ub = Int64.add lb (Int64.sub small 1L) }
    end
  end

let static_chunked ~trip_count ~num_threads ~tid ~chunk_size =
  let cs = if Int64.compare chunk_size 1L < 0 then 1L else chunk_size in
  let lb = Int64.mul (Int64.of_int tid) cs in
  let ub = Int64.add lb (Int64.sub cs 1L) in
  let ub = if Int64.compare ub trip_count >= 0 then Int64.sub trip_count 1L else ub in
  let stride = Int64.mul (Int64.of_int num_threads) cs in
  ((lb, ub), stride)

type flavour = Fixed | Guided of { chunk_min : int64; num_threads : int }

type dynamic_state = {
  mutable next : int64;
  trip_count : int64;
  chunk_size : int64;
  flavour : flavour;
}

let dynamic_create ~trip_count ~chunk_size =
  let chunk_size = if Int64.compare chunk_size 1L < 0 then 1L else chunk_size in
  { next = 0L; trip_count; chunk_size; flavour = Fixed }

let guided_create ~trip_count ~chunk_min ~num_threads =
  let chunk_min = if Int64.compare chunk_min 1L < 0 then 1L else chunk_min in
  {
    next = 0L;
    trip_count;
    chunk_size = chunk_min;
    flavour = Guided { chunk_min; num_threads = max 1 num_threads };
  }

let dynamic_next st =
  if Int64.compare st.next st.trip_count >= 0 then None
  else begin
    let remaining = Int64.sub st.trip_count st.next in
    let this_chunk =
      match st.flavour with
      | Fixed -> st.chunk_size
      | Guided { chunk_min; num_threads } ->
        let proportional =
          Int64.div remaining (Int64.of_int (2 * num_threads))
        in
        if Int64.compare proportional chunk_min < 0 then chunk_min
        else proportional
    in
    let lb = st.next in
    let ub =
      let candidate = Int64.add lb (Int64.sub this_chunk 1L) in
      if Int64.compare candidate st.trip_count >= 0 then
        Int64.sub st.trip_count 1L
      else candidate
    in
    st.next <- Int64.add ub 1L;
    Some { lb; ub }
  end

let coverage chunks ~trip_count =
  let nonempty = List.filter (fun (lb, ub) -> Int64.compare lb ub <= 0) chunks in
  let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) nonempty in
  let rec go expected = function
    | [] -> Int64.equal expected trip_count
    | (lb, ub) :: rest ->
      Int64.equal lb expected
      && Int64.compare ub lb >= 0
      && go (Int64.add ub 1L) rest
  in
  go 0L sorted
