(* Parallel matrix multiplication: `#pragma omp parallel for collapse(2)`
   with a reduction-checked verification pass, across team sizes and both
   lowering paths.

   Demonstrates worksharing, collapse, reduction, and that the simulated
   runtime distributes all iterations exactly once regardless of team size.

   Run with:  dune exec examples/matmul_parallel.exe *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

let source =
  {|void record(long x);

int main(void) {
  int a[12][12];
  int b[12][12];
  int c[12][12];
  for (int i = 0; i < 12; i += 1)
    for (int j = 0; j < 12; j += 1) {
      a[i][j] = (i * 5 + j * 3) % 7 - 3;
      b[i][j] = (i * 2 + j * 11) % 5 - 2;
      c[i][j] = 0;
    }

  #pragma omp parallel for collapse(2)
  for (int i = 0; i < 12; i += 1)
    for (int j = 0; j < 12; j += 1) {
      int acc = 0;
      for (int k = 0; k < 12; k += 1)
        acc += a[i][k] * b[k][j];
      c[i][j] = acc;
    }

  long checksum = 0;
  #pragma omp parallel for reduction(+: checksum)
  for (int i = 0; i < 12; i += 1)
    for (int j = 0; j < 12; j += 1)
      checksum += (long)c[i][j] * (i + 2 * j + 1);
  record(checksum);

  long trace = 0;
  for (int i = 0; i < 12; i += 1) trace += c[i][i];
  record(trace);
  return 0;
}|}

let () =
  print_endline "12x12 integer matmul: parallel for collapse(2) + reduction\n";
  Printf.printf "%10s %10s | %12s %12s | %10s\n" "threads" "path" "checksum"
    "trace" "steps";
  Printf.printf "%s\n" (String.make 64 '-');
  let reference = ref None in
  List.iter
    (fun num_threads ->
      List.iter
        (fun (label, irbuilder) ->
          let options =
            { Driver.default_options with Driver.use_irbuilder = irbuilder }
          in
          let config = { Interp.default_config with Interp.num_threads } in
          match Driver.compile_and_run ~options ~config source with
          | Ok outcome ->
            let ints =
              List.filter_map
                (function Interp.T_int v -> Some v | _ -> None)
                outcome.Interp.trace
            in
            (match ints with
            | [ checksum; trace ] ->
              (match !reference with
              | None -> reference := Some (checksum, trace)
              | Some r ->
                if r <> (checksum, trace) then
                  failwith "results depend on configuration!");
              Printf.printf "%10d %10s | %12Ld %12Ld | %10d\n%!" num_threads
                label checksum trace outcome.Interp.steps
            | _ -> failwith "unexpected trace shape")
          | Error e -> failwith e)
        [ ("classic", false); ("irbuild", true) ])
    [ 1; 2; 4; 8 ];
  print_endline
    "\nIdentical results for every team size and lowering path: worksharing\n\
     covers the collapsed 144-iteration space exactly once per element."
