(* Loop-transformation pipeline: the OpenMP 6.0 preview directives the
   paper's conclusion anticipates (reverse / interchange / fuse), composed
   with the 5.1 transformations, shown as both source-to-source rewrites
   (the shadow AST unparsed back to C) and executions.

   Run with:  dune exec examples/loop_pipeline.exe *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp
open Mc_ast.Tree

let show_transformed title source =
  Printf.printf "\n=== %s ===\n%s\n" title source;
  let diag, tu = Driver.frontend source in
  if Mc_diag.Diagnostics.has_errors diag then
    failwith (Mc_diag.Diagnostics.render_all diag);
  (* Find the outermost transformation directive and unparse its hidden
     generated loop — what a source-to-source tool built on the shadow AST
     would print. *)
  let found = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Mc_ast.Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive d when !found = None && d.dir_transformed <> None ->
              found := Some d
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  (match !found with
  | Some d ->
    print_endline "--- generated loop (shadow AST, unparsed) ---";
    (match d.dir_preinits with
    | Some pre -> print_string (Mc_ast.Unparse.stmt_to_string ~indent:2 pre)
    | None -> ());
    (match d.dir_transformed with
    | Some tr -> print_string (Mc_ast.Unparse.stmt_to_string ~indent:2 tr)
    | None -> ())
  | None -> print_endline "(no transformation found)");
  (* And run it, on both lowering paths. *)
  List.iter
    (fun (label, options) ->
      match Driver.compile_and_run ~options source with
      | Ok outcome ->
        let trace =
          outcome.Interp.trace
          |> List.filter_map (function
               | Interp.T_int v -> Some (Int64.to_string v)
               | Interp.T_float _ -> None)
          |> String.concat " "
        in
        Printf.printf "%-10s -> [%s]\n" label trace
      | Error e -> Printf.printf "%-10s FAILED: %s\n" label e)
    [
      ("classic", Driver.default_options);
      ("irbuilder", { Driver.default_options with Driver.use_irbuilder = true });
    ]

let () =
  print_endline
    "OpenMP 6.0 preview transformations (the paper's future-work outlook)";

  show_transformed "reverse"
    "void record(long x);\n\
     int main(void) {\n\
     #pragma omp reverse\n\
     for (int i = 0; i < 6; i += 1)\n\
     record(i);\n\
     return 0; }";

  show_transformed "interchange (transposing a 2-nest)"
    "void record(long x);\n\
     int main(void) {\n\
     #pragma omp interchange\n\
     for (int i = 0; i < 3; i += 1)\n\
     for (int j = 0; j < 2; j += 1)\n\
     record(10 * i + j);\n\
     return 0; }";

  show_transformed "fuse (a loop sequence becomes one loop)"
    "void record(long x);\n\
     int main(void) {\n\
     #pragma omp fuse\n\
     {\n\
     for (int i = 0; i < 4; i += 1) record(100 + i);\n\
     for (int j = 0; j < 2; j += 1) record(200 + j);\n\
     }\n\
     return 0; }";

  show_transformed "composition: reverse of a tiled loop"
    "void record(long x);\n\
     int main(void) {\n\
     #pragma omp reverse\n\
     #pragma omp tile sizes(3)\n\
     for (int i = 0; i < 8; i += 1)\n\
     record(i);\n\
     return 0; }";

  print_endline
    "\nEvery pair of lines above must agree: the shadow-AST and\n\
     OpenMPIRBuilder implementations of the 6.0 preview are differentially\n\
     tested against each other, like the 5.1 directives."
