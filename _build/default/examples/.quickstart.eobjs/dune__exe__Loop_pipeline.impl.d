examples/loop_pipeline.ml: Int64 List Mc_ast Mc_core Mc_diag Mc_interp Printf String
