examples/quickstart.ml: Int64 List Mc_core Mc_interp Mc_ir Printf String
