examples/matmul_parallel.mli:
