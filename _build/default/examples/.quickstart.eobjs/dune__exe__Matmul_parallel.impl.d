examples/matmul_parallel.ml: List Mc_core Mc_interp Printf String
