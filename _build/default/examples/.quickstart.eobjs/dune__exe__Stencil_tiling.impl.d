examples/stencil_tiling.ml: List Mc_core Mc_interp Printf String
