examples/saxpy_unroll.mli:
