examples/loop_pipeline.mli:
