examples/stencil_tiling.mli:
