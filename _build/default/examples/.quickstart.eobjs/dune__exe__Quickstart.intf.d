examples/quickstart.mli:
