examples/saxpy_unroll.ml: List Mc_core Mc_interp Mc_passes Printf String
