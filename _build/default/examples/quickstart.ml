(* Quickstart: the paper's introduction example, end to end.

   Compiles a `#pragma omp parallel for` + `#pragma omp unroll partial(2)`
   composition through BOTH of the paper's representations, shows the ASTs
   (the nested directives, the shadow AST of §2, the OMPCanonicalLoop of
   §3), the generated IR, and runs the program on the simulated OpenMP
   runtime.

   Run with:  dune exec examples/quickstart.exe *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

let source =
  {|void record(long x);
void body(int i) { record(i); }

int main(void) {
  int N = 10;
  #pragma omp parallel for
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    body(i);
  return 0;
}|}

let heading title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  heading "Source (paper §1.1 introduction example)";
  print_endline source;

  (* --- the syntactic AST, shared by both representations --------------- *)
  heading "AST (-ast-dump): directives nest, the loop is a plain ForStmt";
  print_string (Driver.ast_dump source);

  (* --- representation 1: the shadow AST (paper §2) --------------------- *)
  heading "Shadow AST (classic mode, -ast-dump-shadow): the hidden transformed loop";
  let dump = Driver.ast_dump ~shadow:true source in
  (* Print only the interesting region to keep the output readable. *)
  String.split_on_char '\n' dump
  |> List.filter (fun line ->
         List.exists
           (fun needle ->
             let nl = String.length needle and hl = String.length line in
             let rec go i = i + nl <= hl && (String.sub line i nl = needle || go (i + 1)) in
             nl <= hl && go 0)
           [ "OMPParallelForDirective"; "OMPUnrollDirective"; "<transformed>";
             "<preinits>"; ".capture_expr."; ".unrolled.iv"; ".unroll_inner.iv";
             "LoopHintAttr"; "<loop helpers>"; ".omp.iv" ])
  |> List.iter print_endline;

  (* --- representation 2: OMPCanonicalLoop (paper §3) ------------------- *)
  heading "OMPCanonicalLoop AST (-fopenmp-enable-irbuilder -ast-dump)";
  let irb = { Driver.default_options with Driver.use_irbuilder = true } in
  print_string (Driver.ast_dump ~options:irb source);

  (* --- IR from the OpenMPIRBuilder path --------------------------------- *)
  heading "IR through the OpenMPIRBuilder (outlined function + fork call)";
  let result = Driver.compile ~options:irb source in
  (match result.Driver.ir with
  | Some m ->
    (* Show just the outlined function's call sites. *)
    String.split_on_char '\n' (Mc_ir.Printer.module_to_string m)
    |> List.filter (fun l ->
           let has needle =
             let nl = String.length needle and hl = String.length l in
             let rec go i = i + nl <= hl && (String.sub l i nl = needle || go (i + 1)) in
             nl <= hl && go 0
           in
           has "define" || has "__kmpc" || has "unroll")
    |> List.iter print_endline
  | None -> print_endline "(compilation failed)");

  (* --- execution --------------------------------------------------------- *)
  heading "Execution (4 simulated threads), both paths";
  List.iter
    (fun (label, options) ->
      match Driver.compile_and_run ~options source with
      | Ok outcome ->
        let trace =
          outcome.Interp.trace
          |> List.map (function
               | Interp.T_int v -> Int64.to_string v
               | Interp.T_float f -> string_of_float f)
          |> String.concat " "
        in
        Printf.printf "%-28s trace = [%s]  (%d interpreter steps)\n" label trace
          outcome.Interp.steps
      | Error e -> Printf.printf "%-28s FAILED: %s\n" label e)
    [
      ("classic (shadow AST)", Driver.default_options);
      ("irbuilder (canonical loop)", irb);
    ];
  print_newline ()
