(* SAXPY unrolling: `#pragma omp unroll partial(F)` factor sweep (ablation
   A3), comparing interpreter step counts at -O0 (metadata only, no
   unrolling happens) and -O1 (the mid-end LoopUnroll pass rewrites the
   loop into the paper's Listing-1 shape).

   Run with:  dune exec examples/saxpy_unroll.exe *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

let source =
  {|void recordf(double x);

int main(void) {
  double x[256];
  double y[256];
  for (int i = 0; i < 256; i += 1) { x[i] = i * 0.5; y[i] = 256 - i; }

  #pragma omp unroll partial(FACTOR)
  for (int i = 0; i < 256; i += 1)
    y[i] = 2.5 * x[i] + y[i];

  double sum = 0.0;
  for (int i = 0; i < 256; i += 1) sum += y[i];
  recordf(sum);
  return 0;
}|}

let run ~factor ~optimize =
  let options =
    {
      Driver.default_options with
      Driver.optimize;
      defines = [ ("FACTOR", string_of_int factor) ];
    }
  in
  let result = Driver.compile ~options source in
  match Driver.run result with
  | Ok outcome ->
    let v = match outcome.Interp.trace with [ Interp.T_float f ] -> f | _ -> nan in
    (v, outcome.Interp.steps, result.Driver.unroll_stats)
  | Error e -> failwith e

let () =
  print_endline "SAXPY with '#pragma omp unroll partial(FACTOR)'";
  print_endline
    "(at -O0 the metadata is planted but nothing is duplicated — paper §2.2;\n\
     the LoopUnroll pass performs the duplication at -O1)\n";
  Printf.printf "%8s | %12s | %12s %10s | %10s\n" "factor" "-O0 steps"
    "-O1 steps" "speedup" "checksum";
  Printf.printf "%s\n" (String.make 64 '-');
  let baseline = ref 0 in
  List.iter
    (fun factor ->
      let v0, steps0, _ = run ~factor ~optimize:false in
      let v1, steps1, stats = run ~factor ~optimize:true in
      if v0 <> v1 then failwith "unrolling changed the result!";
      if factor = 1 then baseline := steps1;
      if factor > 1 && stats.Mc_passes.Loop_unroll.partially_unrolled < 1 then
        failwith "expected the loop to be partially unrolled";
      Printf.printf "%8d | %12d | %12d %9.2fx | %10.1f\n%!" factor steps0 steps1
        (float_of_int steps0 /. float_of_int steps1)
        v0)
    [ 1; 2; 4; 8; 16 ];
  print_endline
    "\nLarger unroll factors amortise the loop-control overhead (cond + inc +\n\
     branch per iteration) across more body copies, at the cost of code size —\n\
     the classic unrolling trade-off, measured by the A3 benchmark."
