(* Stencil tiling: `#pragma omp tile sizes(Ti, Tj)` on a 2-D Jacobi-style
   stencil, swept over tile sizes (ablation A2).

   The tile sizes are injected through the preprocessor (-D macros), so the
   same source text is compiled repeatedly with different parameters —
   exactly the "separate the algorithm from its optimization" workflow the
   paper's introduction motivates.

   Run with:  dune exec examples/stencil_tiling.exe *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

let source =
  {|void recordf(double x);

int main(void) {
  double grid[34][34];
  double next[34][34];
  for (int i = 0; i < 34; i += 1)
    for (int j = 0; j < 34; j += 1) {
      grid[i][j] = (i * 31 + j * 17) % 13;
      next[i][j] = 0.0;
    }

  for (int step = 0; step < 4; step += 1) {
    #pragma omp tile sizes(TI, TJ)
    for (int i = 1; i < 33; i += 1)
      for (int j = 1; j < 33; j += 1)
        next[i][j] = 0.25 * (grid[i - 1][j] + grid[i + 1][j]
                             + grid[i][j - 1] + grid[i][j + 1]);
    for (int i = 1; i < 33; i += 1)
      for (int j = 1; j < 33; j += 1)
        grid[i][j] = next[i][j];
  }

  double checksum = 0.0;
  for (int i = 0; i < 34; i += 1)
    for (int j = 0; j < 34; j += 1)
      checksum += grid[i][j] * (1 + (i * 34 + j) % 7);
  recordf(checksum);
  return 0;
}|}

let run ~ti ~tj ~irbuilder =
  let options =
    {
      Driver.default_options with
      Driver.use_irbuilder = irbuilder;
      defines = [ ("TI", string_of_int ti); ("TJ", string_of_int tj) ];
    }
  in
  match Driver.compile_and_run ~options source with
  | Ok outcome ->
    let checksum =
      match outcome.Interp.trace with
      | [ Interp.T_float f ] -> f
      | _ -> nan
    in
    (checksum, outcome.Interp.steps)
  | Error e -> failwith e

let () =
  print_endline "2-D stencil with '#pragma omp tile sizes(TI, TJ)'";
  print_endline "(checksum must be identical for every configuration)\n";
  Printf.printf "%8s %8s | %14s %14s | %14s\n" "TI" "TJ" "classic steps"
    "irbuild steps" "checksum";
  Printf.printf "%s\n" (String.make 70 '-');
  let reference = ref None in
  List.iter
    (fun (ti, tj) ->
      let checksum_c, steps_c = run ~ti ~tj ~irbuilder:false in
      let checksum_i, steps_i = run ~ti ~tj ~irbuilder:true in
      (match !reference with
      | None -> reference := Some checksum_c
      | Some r ->
        if r <> checksum_c || r <> checksum_i then
          failwith "checksum mismatch across tile sizes!");
      if checksum_c <> checksum_i then failwith "paths disagree!";
      Printf.printf "%8d %8d | %14d %14d | %14.2f\n%!" ti tj steps_c steps_i
        checksum_c)
    [ (2, 2); (4, 4); (8, 8); (16, 16); (32, 32); (4, 16); (16, 4) ];
  print_endline "\nAll configurations agree: tiling is semantics-preserving.";
  print_endline
    "(Interpreter steps vary with tile shape because the generated floor/tile\n\
     loop nests have different control overhead — the observable effect the\n\
     A2 ablation benchmark quantifies.)"
