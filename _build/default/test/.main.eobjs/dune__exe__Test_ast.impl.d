test/test_ast.ml: Alcotest Helpers List Mc_ast Mc_core Mc_diag Mc_interp Mc_srcmgr
