test/main.mli:
