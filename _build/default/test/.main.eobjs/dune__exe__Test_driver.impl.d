test/test_driver.ml: Alcotest Helpers List Mc_core Mc_interp Printf
