test/test_int_ops.ml: Alcotest Bool Helpers Int64 Mc_support QCheck
