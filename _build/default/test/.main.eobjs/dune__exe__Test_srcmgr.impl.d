test/test_srcmgr.ml: Alcotest Helpers Mc_diag Mc_srcmgr Printf
