test/test_lexer.ml: Alcotest Gen Helpers List Mc_diag Mc_lexer Mc_srcmgr QCheck String
