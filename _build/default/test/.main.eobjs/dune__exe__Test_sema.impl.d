test/test_sema.ml: Alcotest Helpers List Mc_ast Mc_core Mc_diag Mc_sema Mc_support Option
