test/test_parser.ml: Alcotest Hashtbl Helpers List Mc_ast Mc_core Mc_diag Option
