test/test_passes.ml: Alcotest Hashtbl Helpers List Mc_core Mc_diag Mc_interp Mc_ir Mc_passes Option Printf String
