test/test_fuzz.ml: Alcotest Buffer Helpers Int64 List Mc_ast Mc_core Mc_diag Mc_interp Mc_sema Printf
