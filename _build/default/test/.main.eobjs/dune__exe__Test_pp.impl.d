test/test_pp.ml: Alcotest Helpers List Mc_diag Mc_lexer Mc_pp Mc_srcmgr String
