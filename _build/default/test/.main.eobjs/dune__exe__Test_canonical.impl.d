test/test_canonical.ml: Alcotest Helpers Int64 List Mc_ast Mc_diag Mc_parser Mc_pp Mc_sema Mc_srcmgr Mc_support Printf
