test/test_ir.ml: Alcotest Helpers List Mc_ir
