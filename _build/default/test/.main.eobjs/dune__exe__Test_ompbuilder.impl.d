test/test_ompbuilder.ml: Alcotest Fun Helpers Int64 List Mc_interp Mc_ir Mc_ompbuilder Option Printf
