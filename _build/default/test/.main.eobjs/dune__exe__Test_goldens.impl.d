test/test_goldens.ml: Alcotest Helpers Int64 List Mc_ast Mc_codegen Mc_core Mc_diag Mc_interp Mc_ir Printf String
