test/test_interp.ml: Alcotest Helpers Int64 List Mc_interp Mc_ir Mc_ompbuilder Mc_omprt Option QCheck
