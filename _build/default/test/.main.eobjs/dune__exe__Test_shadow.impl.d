test/test_shadow.ml: Alcotest Helpers List Mc_ast Mc_sema Mc_srcmgr Option Test_canonical
