test/helpers.ml: Alcotest Int64 List Mc_core Mc_diag Mc_interp Printf QCheck QCheck_alcotest String
