test/test_e2e.ml: Alcotest Helpers List Mc_interp
