(* Preprocessor tests: macros, conditionals, includes, pragma assembly. *)

open Helpers
module Pp = Mc_pp.Preprocessor
module Token = Mc_lexer.Token
module Buf = Mc_srcmgr.Memory_buffer
module Srcmgr = Mc_srcmgr.Source_manager
module Fmgr = Mc_srcmgr.File_manager
module Diag = Mc_diag.Diagnostics

let preprocess ?(files = []) ?(expect_errors = false) source =
  let sm = Srcmgr.create () in
  let fm = Fmgr.create () in
  List.iter (fun (path, contents) -> ignore (Fmgr.add_file fm ~path ~contents)) files;
  let diag = Diag.create sm in
  let pp = Pp.create diag sm fm in
  let items = Pp.preprocess_main pp (Buf.create ~name:"pp.c" ~contents:source) in
  if (not expect_errors) && Diag.has_errors diag then
    Alcotest.failf "unexpected pp diagnostics:\n%s" (Diag.render_all diag);
  (items, diag)

let spellings items =
  List.map
    (function
      | Pp.Tok t -> Token.spelling t
      | Pp.Prag p ->
        "#pragma<" ^ String.concat " " (List.map Token.spelling p.Pp.pragma_toks) ^ ">")
    items

let check_spellings what source expected =
  let items, _ = preprocess source in
  Alcotest.(check (list string)) what expected (spellings items)

let test_object_macro () =
  check_spellings "simple" "#define N 10\nint x = N;"
    [ "int"; "x"; "="; "10"; ";" ];
  check_spellings "multi-token body" "#define EXPR (1 + 2)\nEXPR" [ "("; "1"; "+"; "2"; ")" ];
  check_spellings "undef" "#define N 1\n#undef N\nN" [ "N" ]

let test_function_macro () =
  check_spellings "args" "#define ADD(a, b) a + b\nADD(1, 2)" [ "1"; "+"; "2" ];
  check_spellings "nested call parens" "#define ID(x) x\nID((1, 2))"
    [ "("; "1"; ","; "2"; ")" ];
  check_spellings "not followed by paren stays" "#define F(x) x\nF + 1"
    [ "F"; "+"; "1" ];
  check_spellings "expansion rescans" "#define A B\n#define B 7\nA" [ "7" ]

let test_recursion_guard () =
  (* Self-referential macros must not loop forever. *)
  check_spellings "self" "#define X X\nX" [ "X" ];
  check_spellings "mutual" "#define A B\n#define B A\nA" [ "A" ]

let test_conditionals () =
  check_spellings "ifdef taken" "#define ON 1\n#ifdef ON\nyes\n#else\nno\n#endif"
    [ "yes" ];
  check_spellings "ifndef" "#ifndef OFF\nyes\n#endif" [ "yes" ];
  check_spellings "if arithmetic" "#if 2 * 3 > 5\nyes\n#else\nno\n#endif" [ "yes" ];
  check_spellings "if defined()" "#define F 1\n#if defined(F) && F\nyes\n#endif"
    [ "yes" ];
  check_spellings "elif chain" "#if 0\na\n#elif 1\nb\n#elif 1\nc\n#else\nd\n#endif"
    [ "b" ];
  check_spellings "nested dead" "#if 0\n#if 1\nx\n#endif\ny\n#endif\nz" [ "z" ];
  check_spellings "macro in condition" "#define V 3\n#if V == 3\nyes\n#endif"
    [ "yes" ];
  check_spellings "ternary" "#if 1 ? 0 : 1\na\n#else\nb\n#endif" [ "b" ]

let test_include () =
  let items, _ =
    preprocess ~files:[ ("lib.h", "#define FROM_HEADER 5\n") ]
      "#include \"lib.h\"\nint x = FROM_HEADER;"
  in
  Alcotest.(check (list string)) "include"
    [ "int"; "x"; "="; "5"; ";" ]
    (spellings items)

let test_include_missing () =
  let _, diag = preprocess ~expect_errors:true "#include \"nope.h\"\n" in
  check_contains ~what:"missing include" (Diag.render_all diag) "file not found"

let test_pragma_assembly () =
  let items, _ =
    preprocess "#pragma omp parallel for schedule(static)\nfor_token" in
  match items with
  | [ Pp.Prag p; Pp.Tok t ] ->
    Alcotest.(check (list string))
      "pragma tokens"
      [ "omp"; "parallel"; "for"; "schedule"; "("; "static"; ")" ]
      (List.map Token.spelling p.Pp.pragma_toks);
    Alcotest.(check string) "next token" "for_token" (Token.spelling t)
  | _ -> Alcotest.fail "expected pragma then token"

let test_pragma_macro_expansion () =
  (* OpenMP requires macro replacement inside directives. *)
  let items, _ = preprocess "#define UF 4\n#pragma omp unroll partial(UF)\nx" in
  match items with
  | [ Pp.Prag p; Pp.Tok _ ] ->
    Alcotest.(check (list string))
      "expanded" [ "omp"; "unroll"; "partial"; "("; "4"; ")" ]
      (List.map Token.spelling p.Pp.pragma_toks)
  | _ -> Alcotest.fail "expected pragma"

let test_unknown_pragma_warns () =
  let items, diag = preprocess "#pragma weird stuff\nx" in
  Alcotest.(check (list string)) "dropped" [ "x" ] (spellings items);
  Alcotest.(check int) "warning" 1 (Diag.warning_count diag)

let test_error_directive () =
  let _, diag = preprocess ~expect_errors:true "#if 0\n#error hidden\n#endif\n#error boom now\n" in
  let rendered = Diag.render_all diag in
  check_contains ~what:"#error text" rendered "#error boom now";
  Alcotest.(check int) "only the live one" 1 (Diag.error_count diag)

let test_unterminated_if () =
  let _, diag = preprocess ~expect_errors:true "#if 1\nx\n" in
  check_contains ~what:"unterminated" (Diag.render_all diag) "unterminated #if"

let test_stringize_and_paste () =
  (* ## pastes tokens; useful with numbered identifiers. *)
  check_spellings "paste idents" "#define GLUE(a, b) a ## b\nGLUE(var, 7)"
    [ "var7" ];
  check_spellings "paste numbers" "#define CAT(a, b) a ## b\nCAT(1, 2)" [ "12" ];
  (* # stringizes the argument's spelling. *)
  let items, _ = preprocess "#define STR(x) #x\nSTR(a + 1)" in
  (match items with
  | [ Pp.Tok { Token.kind = Token.String_lit { value; _ }; _ } ] ->
    Alcotest.(check string) "stringized" "a + 1" value
  | _ -> Alcotest.fail "expected one string literal");
  (* A pasted identifier participates in further expansion per usual
     rescanning rules. *)
  check_spellings "paste then expand"
    "#define N2 42\n#define GLUE(a, b) a ## b\nGLUE(N, 2)" [ "42" ];
  (* Invalid paste diagnoses. *)
  let _, diag =
    preprocess ~expect_errors:true "#define BAD(a) a ## ## \nBAD(x)"
  in
  Alcotest.(check bool) "errors" true (Mc_diag.Diagnostics.has_errors diag)

let test_predefine () =
  let sm = Srcmgr.create () in
  let fm = Fmgr.create () in
  let diag = Diag.create sm in
  let pp = Pp.create diag sm fm in
  Pp.define_object_macro pp ~name:"N" ~body:"32";
  let items = Pp.preprocess_main pp (Buf.create ~name:"p.c" ~contents:"N") in
  Alcotest.(check (list string)) "predefined" [ "32" ] (spellings items);
  Alcotest.(check bool) "listed" true (List.mem "N" (Pp.macro_names pp))

let suite =
  [
    tc "object-like macros" test_object_macro;
    tc "function-like macros" test_function_macro;
    tc "recursion guard" test_recursion_guard;
    tc "conditional compilation" test_conditionals;
    tc "#include via virtual FS" test_include;
    tc "#include missing file" test_include_missing;
    tc "#pragma omp assembly" test_pragma_assembly;
    tc "macro expansion inside pragmas" test_pragma_macro_expansion;
    tc "unknown pragma warning" test_unknown_pragma_warns;
    tc "#error directive" test_error_directive;
    tc "unterminated #if" test_unterminated_if;
    tc "stringize (#) and paste (##)" test_stringize_and_paste;
    tc "predefined macros (-D)" test_predefine;
  ]
