(* AST-level tests: the class hierarchies of the paper's Figs. 3-5, the
   shadow-node budget of experiment C1, dumping and unparsing. *)

open Helpers
open Mc_ast.Tree
module Classify = Mc_ast.Classify
module Visit = Mc_ast.Visit
module Dump = Mc_ast.Dump
module Unparse = Mc_ast.Unparse
module Driver = Mc_core.Driver

let frontend ?(options = classic) source =
  let diag, tu = Driver.frontend ~options source in
  if Mc_diag.Diagnostics.has_errors diag then
    Alcotest.failf "frontend errors:\n%s" (Mc_diag.Diagnostics.render_all diag);
  tu

let find_directive tu =
  let found = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive d when !found = None -> found := Some d
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  match !found with Some d -> d | None -> Alcotest.fail "no directive found"

(* ---- Fig. 3: base Stmt hierarchy -------------------------------------- *)

let test_hierarchy_fig3 () =
  let tu =
    frontend
      "void body(int i);\n\
       int main(void) {\n\
       #pragma omp parallel for\n\
       for (int i = 0; i < 4; i += 1) body(i);\n\
       return 0; }"
  in
  let d = find_directive tu in
  let stmt = mk_stmt ~loc:Mc_srcmgr.Source_location.invalid (Omp_directive d) in
  Alcotest.(check (list string))
    "parallel for ancestry"
    [ "OMPParallelForDirective"; "OMPLoopDirective"; "OMPLoopBasedDirective";
      "OMPExecutableDirective"; "Stmt" ]
    (Classify.stmt_ancestry stmt)

(* ---- Fig. 4: the loop-transformation layer ----------------------------- *)

let test_hierarchy_fig4 () =
  let mk kind =
    mk_stmt ~loc:Mc_srcmgr.Source_location.invalid
      (Omp_directive (mk_directive ~kind ~clauses:[] ~loc:Mc_srcmgr.Source_location.invalid ()))
  in
  Alcotest.(check (list string))
    "unroll sits under OMPLoopBasedDirective but not OMPLoopDirective"
    [ "OMPUnrollDirective"; "OMPLoopBasedDirective"; "OMPExecutableDirective"; "Stmt" ]
    (Classify.stmt_ancestry (mk D_unroll));
  Alcotest.(check (list string))
    "tile likewise"
    [ "OMPTileDirective"; "OMPLoopBasedDirective"; "OMPExecutableDirective"; "Stmt" ]
    (Classify.stmt_ancestry (mk D_tile));
  Alcotest.(check (list string))
    "parallel is a plain executable directive"
    [ "OMPParallelDirective"; "OMPExecutableDirective"; "Stmt" ]
    (Classify.stmt_ancestry (mk D_parallel));
  (* The classifier relations themselves. *)
  Alcotest.(check bool) "unroll loop-based" true
    (Classify.is_omp_loop_based_directive D_unroll);
  Alcotest.(check bool) "unroll not loop-directive" false
    (Classify.is_omp_loop_directive D_unroll);
  Alcotest.(check bool) "for is loop-directive" true
    (Classify.is_omp_loop_directive D_for);
  Alcotest.(check bool) "unroll is transformation" true
    (Classify.is_loop_transformation D_unroll);
  Alcotest.(check bool) "for is not" false (Classify.is_loop_transformation D_for)

(* ---- Fig. 5: the clause hierarchy -------------------------------------- *)

let test_hierarchy_fig5 () =
  List.iter
    (fun (c, expected) ->
      Alcotest.(check (list string))
        expected
        [ expected; "OMPClause" ]
        (Classify.clause_ancestry c))
    [
      (C_full, "OMPFullClause");
      (C_partial None, "OMPPartialClause");
      (C_sizes [], "OMPSizesClause");
      (C_nowait, "OMPNowaitClause");
    ]

(* ---- C1: shadow-node budget --------------------------------------------- *)

let test_shadow_node_budget () =
  (* The paper: OMPLoopDirective has up to 30 shadow statements plus 6 per
     associated loop; OMPCanonicalLoop needs exactly 3 pieces of meta
     information. *)
  let tu =
    frontend
      "void body(int i);\n\
       int main(void) {\n\
       #pragma omp parallel for collapse(2)\n\
       for (int i = 0; i < 4; i += 1)\n\
       for (int j = 0; j < 4; j += 1) body(i + j);\n\
       return 0; }"
  in
  let d = find_directive tu in
  (match d.dir_loop_helpers with
  | Some h ->
    Alcotest.(check int) "slots for depth 2" (30 + 12) (Visit.helper_slot_count h);
    let occupied = Visit.helper_occupied_count h in
    if occupied < 16 + 12 then
      Alcotest.failf "expected at least 28 occupied helper slots, got %d" occupied
  | None -> Alcotest.fail "classic loop directive must carry helpers");
  (* Irbuilder mode: exactly 3. *)
  let tu2 =
    frontend ~options:irbuilder
      "void body(int i);\n\
       int main(void) {\n\
       #pragma omp unroll partial(2)\n\
       for (int i = 0; i < 4; i += 1) body(i);\n\
       return 0; }"
  in
  let d2 = find_directive tu2 in
  match d2.dir_assoc with
  | Some { s_kind = Omp_canonical_loop ocl; _ } ->
    Alcotest.(check int) "canonical meta count" 3 (Visit.canonical_meta_count ocl)
  | _ -> Alcotest.fail "irbuilder unroll should wrap an OMPCanonicalLoop"

let test_shadow_hidden_from_children () =
  (* Clang's children() does not expose shadow nodes (paper §1.2): node
     counts with and without shadow must differ for a classic tile. *)
  let tu =
    frontend
      "void body(int i);\n\
       int main(void) {\n\
       #pragma omp tile sizes(4)\n\
       for (int i = 0; i < 16; i += 1) body(i);\n\
       return 0; }"
  in
  let d = find_directive tu in
  let stmt = mk_stmt ~loc:Mc_srcmgr.Source_location.invalid (Omp_directive d) in
  let visible = Visit.count_nodes ~shadow:false stmt in
  let with_shadow = Visit.count_nodes ~shadow:true stmt in
  if with_shadow <= visible then
    Alcotest.failf "shadow nodes missing: visible %d, with shadow %d" visible
      with_shadow;
  (* The transformed AST exists but is not a visible child. *)
  Alcotest.(check bool) "transformed stored" true (d.dir_transformed <> None);
  let dump_plain = Dump.stmt stmt in
  let dump_shadow = Dump.stmt ~shadow:true stmt in
  Alcotest.(check bool) "plain dump hides transformed" false
    (contains_substring dump_plain "<transformed>");
  check_contains ~what:"shadow dump" dump_shadow "<transformed>"

(* ---- dump details --------------------------------------------------------- *)

let test_dump_format () =
  let tu =
    frontend
      "int main(void) { int x = 1; if (x < 2) x = x + 1; return x; }"
  in
  let dump = Dump.translation_unit tu in
  check_contains ~what:"root" dump "TranslationUnitDecl";
  check_contains ~what:"fn" dump "FunctionDecl main 'int ()'";
  check_contains ~what:"var" dump "VarDecl 1 used x 'int' cinit";
  check_contains ~what:"if" dump "IfStmt";
  check_contains ~what:"binop" dump "BinaryOperator 'int' '<'";
  check_contains ~what:"lvalue cast" dump "ImplicitCastExpr 'int' <LValueToRValue>";
  check_contains ~what:"tree art" dump "|-";
  check_contains ~what:"tree art last" dump "`-"

let test_unparse_roundtrip () =
  (* Unparse then re-frontend: the second AST must unparse identically
     (a fixpoint check that exercises precedence printing). *)
  let source =
    "void record(long x);\n\
     int main(void) {\n\
     int a = 1 + 2 * 3;\n\
     int b = (1 + 2) * 3;\n\
     int c = a < b ? a : b & 3;\n\
     int d = -a + ~b;\n\
     record(a + b + c + d);\n\
     return 0; }"
  in
  let tu1 = frontend source in
  let printed1 = Unparse.translation_unit_to_string tu1 in
  let tu2 = frontend printed1 in
  let printed2 = Unparse.translation_unit_to_string tu2 in
  Alcotest.(check string) "unparse fixpoint" printed1 printed2

let test_unparse_preserves_semantics () =
  let source =
    "void record(long x);\n\
     int main(void) {\n\
     int total = 0;\n\
     for (int i = 0; i < 10; i += 1) {\n\
     if (i % 2 == 0) continue;\n\
     total += i * i - 1;\n\
     }\n\
     record(total);\n\
     return 0; }"
  in
  let tu = frontend source in
  let printed = Unparse.translation_unit_to_string tu in
  let t1 = trace_of source in
  let t2 = trace_of printed in
  Alcotest.(check bool) "same trace" true (Mc_interp.Interp.trace_equal t1 t2)

let suite =
  [
    tc "Fig 3: Stmt hierarchy" test_hierarchy_fig3;
    tc "Fig 4: loop-transformation hierarchy" test_hierarchy_fig4;
    tc "Fig 5: clause hierarchy" test_hierarchy_fig5;
    tc "C1: shadow node budget 30+6d vs 3" test_shadow_node_budget;
    tc "shadow AST hidden from children" test_shadow_hidden_from_children;
    tc "dump format" test_dump_format;
    tc "unparse fixpoint" test_unparse_roundtrip;
    tc "unparse preserves semantics" test_unparse_preserves_semantics;
  ]
