(* Unit tests for the canonical-loop analysis (Mc_sema.Canonical): the
   init/cond/incr field extraction, the synthesised trip-count and
   user-value expressions (checked by constant evaluation against reference
   arithmetic), and the counter-width rules of paper §3.1. *)

open Helpers
open Mc_ast.Tree
module Canonical = Mc_sema.Canonical
module Const_eval = Mc_sema.Const_eval
module Sema = Mc_sema.Sema
module Ctype = Mc_ast.Ctype

(* Parse one for-loop (inside a driver main) and run Canonical.analyze on
   it with the same Sema instance. *)
let analyze_loop ?(decls = "") loop =
  let source =
    "void record(long x);\nint main(void) {\n" ^ decls ^ "\n" ^ loop
    ^ "\nreturn 0; }"
  in
  let srcmgr = Mc_srcmgr.Source_manager.create () in
  let fmgr = Mc_srcmgr.File_manager.create () in
  let diag = Mc_diag.Diagnostics.create srcmgr in
  let pp = Mc_pp.Preprocessor.create diag srcmgr fmgr in
  let items =
    Mc_pp.Preprocessor.preprocess_main pp
      (Mc_srcmgr.Memory_buffer.create ~name:"c.c" ~contents:source)
  in
  let sema = Sema.create diag in
  let tu = Mc_parser.Parser.parse_translation_unit sema items in
  if Mc_diag.Diagnostics.has_errors diag then
    Alcotest.failf "parse failed:\n%s" (Mc_diag.Diagnostics.render_all diag);
  let found = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; fn_name = "main"; _ } ->
        Mc_ast.Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | For _ | Range_for _ -> if !found = None then found := Some s
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  match !found with
  | None -> Alcotest.fail "no loop found"
  | Some loop_stmt -> (
    match Canonical.analyze sema loop_stmt with
    | Some a -> (sema, a)
    | None ->
      Alcotest.failf "analysis rejected the loop:\n%s"
        (Mc_diag.Diagnostics.render_all diag))

let eval_or_fail what e =
  match Const_eval.eval_int e with
  | Some v -> v
  | None -> Alcotest.failf "%s is not a constant" what

let test_field_extraction () =
  let _, a = analyze_loop "for (int i = 7; i < 17; i += 3) record(i);" in
  Alcotest.(check string) "var" "i" a.Canonical.cl_iter_var.v_name;
  Alcotest.(check int64) "init" 7L (eval_or_fail "init" a.Canonical.cl_init);
  Alcotest.(check int64) "bound" 17L (eval_or_fail "bound" a.Canonical.cl_bound);
  Alcotest.(check (option int64)) "step" (Some 3L) a.Canonical.cl_step_const;
  Alcotest.(check bool) "up" true (a.Canonical.cl_dir = Canonical.Up);
  Alcotest.(check bool) "lt" true (a.Canonical.cl_cmp = Canonical.Cmp_lt);
  Alcotest.(check string) "counter type" "unsigned int"
    (Ctype.to_string a.Canonical.cl_counter_ty)

let test_commuted_and_down () =
  let _, a = analyze_loop "for (int i = 0; 10 > i; ++i) record(i);" in
  Alcotest.(check bool) "commuted lt" true (a.Canonical.cl_cmp = Canonical.Cmp_lt);
  let _, a = analyze_loop "for (int i = 20; i >= 5; i -= 4) record(i);" in
  Alcotest.(check bool) "down" true (a.Canonical.cl_dir = Canonical.Down);
  Alcotest.(check bool) "ge" true (a.Canonical.cl_cmp = Canonical.Cmp_ge);
  Alcotest.(check (option int64)) "magnitude" (Some 4L) a.Canonical.cl_step_const

let test_counter_widths () =
  (* §3.1: the logical counter is unsigned, wide enough for the iteration
     space of the variable's type. *)
  let check decls loop expected =
    let _, a = analyze_loop ~decls loop in
    Alcotest.(check string) loop expected
      (Ctype.to_string a.Canonical.cl_counter_ty)
  in
  check "" "for (int i = 0; i < 4; ++i) record(i);" "unsigned int";
  check "" "for (unsigned i = 0; i < 4u; ++i) record(i);" "unsigned int";
  check "" "for (long i = 0; i < 4; ++i) record(i);" "unsigned long";
  check "double a[3];" "for (double &v : a) recordf(v);" "unsigned long";
  ()

(* Reference trip count in plain OCaml. *)
let reference_count ~init ~bound ~step ~cmp =
  let rec go i n =
    let continue_ =
      match cmp with
      | `Lt -> i < bound
      | `Le -> i <= bound
      | `Gt -> i > bound
      | `Ge -> i >= bound
    in
    if continue_ then go (i + step) (n + 1) else n
  in
  go init 0

let test_trip_count_matrix () =
  List.iter
    (fun (init, bound, step, cmp, cmp_str) ->
      let loop =
        Printf.sprintf "for (int i = %d; i %s %d; i += %d) record(i);" init
          cmp_str bound step
      in
      (* Negative steps spelled as -= magnitude. *)
      let loop =
        if step < 0 then
          Printf.sprintf "for (int i = %d; i %s %d; i -= %d) record(i);" init
            cmp_str bound (-step)
        else loop
      in
      let sema, a = analyze_loop loop in
      let tc = Canonical.trip_count_expr sema a in
      let got = eval_or_fail loop tc in
      let expected = reference_count ~init ~bound ~step ~cmp in
      Alcotest.(check int64) loop (Int64.of_int expected) got)
    [
      (0, 10, 1, `Lt, "<");
      (0, 10, 3, `Lt, "<");
      (0, 10, 3, `Le, "<=");
      (7, 17, 3, `Lt, "<");
      (5, 5, 1, `Lt, "<");
      (5, 5, 1, `Le, "<=");
      (6, 5, 1, `Lt, "<"); (* empty *)
      (10, 0, -1, `Gt, ">");
      (10, 0, -3, `Gt, ">");
      (10, 0, -3, `Ge, ">=");
      (0, 10, -1, `Gt, ">"); (* empty downward *)
      (-5, 5, 2, `Lt, "<");
      (-10, -2, 3, `Le, "<=");
    ]

let test_user_value_matrix () =
  (* user_value(k) = init + k*step (up) / init - k*step (down), in the
     variable's own wrapped arithmetic. *)
  List.iter
    (fun (loop, logicals_and_expected) ->
      let sema, a = analyze_loop loop in
      List.iter
        (fun (k, expected) ->
          let logical =
            Sema.intexpr sema (Int64.of_int k) a.Canonical.cl_counter_ty
              Mc_srcmgr.Source_location.invalid
          in
          let v = Canonical.user_value_expr sema a ~logical in
          Alcotest.(check int64)
            (Printf.sprintf "%s @%d" loop k)
            expected
            (eval_or_fail "user value" v))
        logicals_and_expected)
    [
      ("for (int i = 7; i < 17; i += 3) record(i);",
       [ (0, 7L); (1, 10L); (3, 16L) ]);
      ("for (int i = 20; i > 0; i -= 4) record(i);",
       [ (0, 20L); (2, 12L); (4, 4L) ]);
      ("for (int i = -5; i <= 5; ++i) record(i);", [ (0, -5L); (10, 5L) ]);
    ]

let test_make_canonical_loop_shape () =
  let sema, a = analyze_loop "for (int i = 2; i < 9; i += 2) record(i);" in
  let wrapped = Canonical.make_canonical_loop sema a in
  match wrapped.s_kind with
  | Omp_canonical_loop ocl ->
    (* Exactly the 3 pieces of §3 meta information. *)
    Alcotest.(check int) "meta" 3 (Mc_ast.Visit.canonical_meta_count ocl);
    (* Distance lambda: one out-parameter, assignment body. *)
    Alcotest.(check int) "distance params" 1
      (List.length ocl.ocl_distance.cap_params);
    (* Loop-value lambda: result + logical. *)
    Alcotest.(check int) "loop-value params" 2
      (List.length ocl.ocl_loop_value.cap_params);
    (match ocl.ocl_var_ref.e_kind with
    | Decl_ref v -> Alcotest.(check string) "user var" "i" v.v_name
    | _ -> Alcotest.fail "var ref");
    Alcotest.(check int) "counter width" 32
      ocl.ocl_counter_width.Mc_support.Int_ops.bits;
    Alcotest.(check bool) "unsigned" false
      ocl.ocl_counter_width.Mc_support.Int_ops.signed
  | _ -> Alcotest.fail "expected OMPCanonicalLoop"

let test_range_for_analysis () =
  let _, a =
    analyze_loop ~decls:"double arr[5];" "for (double &v : arr) recordf(v);"
  in
  Alcotest.(check bool) "flagged" true a.Canonical.cl_is_range_for;
  Alcotest.(check string) "iteration var is __begin" "__begin"
    a.Canonical.cl_iter_var.v_name;
  Alcotest.(check string) "user var is v" "v" a.Canonical.cl_user_var.v_name;
  (* Fig. 8c: the memoised de-sugared loop exists on demand. *)
  (match a.Canonical.cl_stmt.s_kind with
  | Range_for rf ->
    let sema, _ = analyze_loop ~decls:"double arr[5];" "for (double &v : arr) recordf(v);" in
    let d = Canonical.desugared_range_for sema rf ~loc:a.Canonical.cl_stmt.s_loc in
    let dump = Mc_ast.Dump.stmt d in
    check_contains ~what:"distance var" dump "__distance";
    check_contains ~what:"index var" dump "__i"
  | _ -> Alcotest.fail "not a range for")

let suite =
  [
    tc "field extraction" test_field_extraction;
    tc "commuted conditions and downward loops" test_commuted_and_down;
    tc "counter width rules (3.1)" test_counter_widths;
    tc "trip-count expression matrix" test_trip_count_matrix;
    tc "user-value expression matrix" test_user_value_matrix;
    tc "OMPCanonicalLoop construction shape" test_make_canonical_loop_shape;
    tc "range-for analysis and Fig 8c" test_range_for_analysis;
  ]
