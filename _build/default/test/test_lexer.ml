(* Lexer unit tests plus a print-and-relex property. *)

open Helpers
module Token = Mc_lexer.Token
module Lexer = Mc_lexer.Lexer
module Buf = Mc_srcmgr.Memory_buffer
module Srcmgr = Mc_srcmgr.Source_manager
module Diag = Mc_diag.Diagnostics

let lex ?(expect_errors = false) source =
  let sm = Srcmgr.create () in
  let diag = Diag.create sm in
  let buf = Buf.create ~name:"lex.c" ~contents:source in
  let id = Srcmgr.load_buffer sm buf in
  let toks = Lexer.tokenize diag ~file_id:id buf in
  if (not expect_errors) && Diag.has_errors diag then
    Alcotest.failf "unexpected lexer diagnostics:\n%s" (Diag.render_all diag);
  toks

let kinds source = List.map (fun t -> t.Token.kind) (lex source)

let test_keywords_and_idents () =
  match kinds "int foo while0 _bar" with
  | [ Token.Keyword Token.Kw_int; Token.Ident "foo"; Token.Ident "while0";
      Token.Ident "_bar" ] ->
    ()
  | other -> Alcotest.failf "got %d tokens" (List.length other)

let test_int_literals () =
  let value s =
    match kinds s with
    | [ Token.Int_lit { value; _ } ] -> value
    | _ -> Alcotest.failf "expected one int literal for %s" s
  in
  Alcotest.(check int64) "dec" 42L (value "42");
  Alcotest.(check int64) "hex" 255L (value "0xFF");
  Alcotest.(check int64) "octal" 8L (value "010");
  Alcotest.(check int64) "zero" 0L (value "0");
  Alcotest.(check int64) "big" 4294967295L (value "4294967295");
  match kinds "42u 42l 42ul 42ULL" with
  | [ Token.Int_lit { suffix = s1; _ }; Token.Int_lit { suffix = s2; _ };
      Token.Int_lit { suffix = s3; _ }; Token.Int_lit { suffix = s4; _ } ] ->
    Alcotest.(check bool) "u" true s1.Token.suffix_unsigned;
    Alcotest.(check bool) "l" true s2.Token.suffix_long;
    Alcotest.(check bool) "ul u" true s3.Token.suffix_unsigned;
    Alcotest.(check bool) "ul l" true s3.Token.suffix_long;
    Alcotest.(check bool) "ull" true (s4.Token.suffix_unsigned && s4.Token.suffix_long)
  | _ -> Alcotest.fail "suffix tokens"

let test_float_literals () =
  let value s =
    match kinds s with
    | [ Token.Float_lit { value; _ } ] -> value
    | _ -> Alcotest.failf "expected one float literal for %s" s
  in
  Alcotest.(check (float 1e-9)) "simple" 1.5 (value "1.5");
  Alcotest.(check (float 1e-9)) "exp" 150.0 (value "1.5e2");
  Alcotest.(check (float 1e-9)) "neg exp" 0.015 (value "1.5e-2");
  Alcotest.(check (float 1e-9)) "suffix" 2.0 (value "2.0f");
  (* '1.' then member access would be float; we only support digits after
     the dot when present, but '1.' alone is a float. *)
  Alcotest.(check (float 1e-9)) "trailing dot" 1.0 (value "1.")

let test_char_and_string () =
  (match kinds "'a' '\\n' '\\\\'" with
  | [ Token.Char_lit { value = 97; _ }; Token.Char_lit { value = 10; _ };
      Token.Char_lit { value = 92; _ } ] ->
    ()
  | _ -> Alcotest.fail "char literals");
  match kinds "\"hi\\tthere\"" with
  | [ Token.String_lit { value; _ } ] ->
    Alcotest.(check string) "escape" "hi\tthere" value
  | _ -> Alcotest.fail "string literal"

let test_punctuators () =
  let s = "<< >> <<= >>= <= >= == != && || ++ -- -> ... & | ^ ~ ! ? : ; , . # ##" in
  let expected =
    Token.[
      LessLess; GreaterGreater; LessLessEqual; GreaterGreaterEqual; LessEqual;
      GreaterEqual; EqualEqual; ExclaimEqual; AmpAmp; PipePipe; PlusPlus;
      MinusMinus; Arrow; Ellipsis; Amp; Pipe; Caret; Tilde; Exclaim; Question;
      Colon; Semi; Comma; Period; Hash; HashHash;
    ]
  in
  let got =
    List.filter_map
      (function Token.Punct p -> Some p | _ -> None)
      (kinds s)
  in
  Alcotest.(check int) "count" (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      Alcotest.(check string) "punct" (Token.punct_to_string e)
        (Token.punct_to_string g))
    expected got

let test_comments_and_flags () =
  let toks = lex "a // line comment\nb /* block\ncomment */ c" in
  (match List.map Token.spelling toks with
  | [ "a"; "b"; "c" ] -> ()
  | other -> Alcotest.failf "got %s" (String.concat "," other));
  let b = List.nth toks 1 and c = List.nth toks 2 in
  Alcotest.(check bool) "b at line start" true b.Token.at_line_start;
  (* Only whitespace/comments precede 'c' on its line, so it counts as
     line-initial (as in C's directive rules and Clang's StartOfLine). *)
  Alcotest.(check bool) "c at line start" true c.Token.at_line_start;
  Alcotest.(check bool) "c has space" true c.Token.has_space_before

let test_line_splice () =
  let toks = lex "ab\\\ncd" in
  match List.map Token.spelling toks with
  | [ "ab"; "cd" ] ->
    (* The splice removes the newline, so 'cd' does NOT start a line. *)
    Alcotest.(check bool) "no line start" false
      (List.nth toks 1).Token.at_line_start
  | other -> Alcotest.failf "got %s" (String.concat "," other)

let test_errors () =
  let sm = Srcmgr.create () in
  let diag = Diag.create sm in
  let buf = Buf.create ~name:"e.c" ~contents:"int $ x; \"unterminated" in
  let id = Srcmgr.load_buffer sm buf in
  ignore (Lexer.tokenize diag ~file_id:id buf);
  Alcotest.(check bool) "errors" true (Diag.has_errors diag);
  check_contains ~what:"bad char" (Diag.render_all diag) "unexpected character";
  check_contains ~what:"string" (Diag.render_all diag) "unterminated string"

(* Property: rendering a random token list with spaces and re-lexing gives
   the same spellings back. *)
let arb_token_text =
  let idents = [ "a"; "foo"; "x1"; "_t" ] in
  let kws = [ "int"; "for"; "while"; "return"; "unsigned" ] in
  let puncts = [ "+"; "-"; "*"; "/"; "<<"; ">>="; "=="; "("; ")"; "{"; "}"; ";" ] in
  let lits = [ "0"; "42"; "0x1F"; "3.5"; "1e3"; "'c'"; "\"s\"" ] in
  QCheck.oneofl (idents @ kws @ puncts @ lits)

let relex_prop =
  prop "print-and-relex preserves spellings" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 30) arb_token_text)
    (fun texts ->
      let source = String.concat " " texts in
      let toks = lex source in
      List.map Token.spelling toks = texts)

let suite =
  [
    tc "keywords and identifiers" test_keywords_and_idents;
    tc "integer literals" test_int_literals;
    tc "float literals" test_float_literals;
    tc "char and string literals" test_char_and_string;
    tc "punctuators incl. maximal munch" test_punctuators;
    tc "comments and token flags" test_comments_and_flags;
    tc "line splices" test_line_splice;
    tc "lexical errors" test_errors;
    relex_prop;
  ]
