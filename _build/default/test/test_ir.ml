(* IR-level tests: builder folding (ablation A4's mechanism), the verifier,
   and the printer. *)

open Helpers
open Mc_ir.Ir
module B = Mc_ir.Builder
module Verifier = Mc_ir.Verifier
module Printer = Mc_ir.Printer

let fresh_fn ?(name = "f") ?(ret = Void) () =
  let m = create_module "test" in
  let f = define_function m ~name ~ret ~args:[] in
  let entry = create_block ~name:"entry" f in
  (m, f, entry)

let test_builder_constant_folding () =
  let _, _, entry = fresh_fn () in
  let b = B.create () in
  B.set_insertion_point b entry;
  (match B.add b (i32_const 2) (i32_const 3) with
  | Const_int (I32, 5L) -> ()
  | _ -> Alcotest.fail "2+3 should fold");
  (match B.mul b (i32_const 6) (i32_const 7) with
  | Const_int (I32, 42L) -> ()
  | _ -> Alcotest.fail "6*7 should fold");
  (match B.icmp b Islt (i32_const 1) (i32_const 2) with
  | Const_int (I1, 1L) -> ()
  | _ -> Alcotest.fail "1<2 should fold");
  (match B.sdiv b (i32_const 7) (i32_const 0) with
  | Inst_ref _ -> () (* division by zero must NOT fold *)
  | _ -> Alcotest.fail "x/0 must not fold");
  (* i32 wrap-around semantics in folding. *)
  match B.add b (i32_const 2147483647) (i32_const 1) with
  | Const_int (I32, v) -> Alcotest.(check int64) "wrap" (-2147483648L) v
  | _ -> Alcotest.fail "wrapping add should fold"

let test_builder_identities () =
  let _, _, entry = fresh_fn () in
  let b = B.create () in
  B.set_insertion_point b entry;
  let x = B.call b ~ret:I32 (Runtime "omp_get_thread_num") [] in
  Alcotest.(check bool) "x+0 = x" true (value_equal (B.add b x (i32_const 0)) x);
  Alcotest.(check bool) "0+x = x" true (value_equal (B.add b (i32_const 0) x) x);
  Alcotest.(check bool) "x*1 = x" true (value_equal (B.mul b x (i32_const 1)) x);
  (match B.mul b x (i32_const 0) with
  | Const_int (I32, 0L) -> ()
  | _ -> Alcotest.fail "x*0 = 0");
  Alcotest.(check bool) "x-0 = x" true (value_equal (B.sub b x (i32_const 0)) x);
  (match B.sub b x x with
  | Const_int (I32, 0L) -> ()
  | _ -> Alcotest.fail "x-x = 0");
  Alcotest.(check bool) "x|0 = x" true (value_equal (B.or_ b x (i32_const 0)) x);
  (* select folding *)
  Alcotest.(check bool) "select true" true
    (value_equal (B.select b (bool_const true) x (i32_const 9)) x)

let test_folding_disabled () =
  let _, f, entry = fresh_fn () in
  let b = B.create ~fold:false () in
  B.set_insertion_point b entry;
  (match B.add b (i32_const 2) (i32_const 3) with
  | Inst_ref _ -> ()
  | _ -> Alcotest.fail "folding disabled must materialise the add");
  Alcotest.(check int) "one inst" 1 (func_inst_count f)

let test_cond_br_folding () =
  let _, f, entry = fresh_fn () in
  let then_b = create_block ~name:"t" f in
  let else_b = create_block ~name:"e" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  B.cond_br b (bool_const true) then_b else_b;
  (match entry.b_term with
  | Br t when t == then_b -> ()
  | _ -> Alcotest.fail "constant branch should fold");
  B.set_insertion_point b then_b;
  B.ret b None;
  B.set_insertion_point b else_b;
  B.ret b None

let test_verifier_catches_issues () =
  (* Unterminated block. *)
  let m, _, _ = fresh_fn () in
  (match Verifier.check m with
  | Error e -> check_contains ~what:"noterm" e "no terminator"
  | Ok () -> Alcotest.fail "should report missing terminator");
  (* Type mismatch. *)
  let m2, _, entry2 = fresh_fn () in
  let bad = mk_inst ~ty:I32 (Binop (Add, i32_const 1, i64_const 2)) in
  append_inst entry2 bad;
  entry2.b_term <- Ret None;
  (match Verifier.check m2 with
  | Error e -> check_contains ~what:"types" e "binop operand types differ"
  | Ok () -> Alcotest.fail "should report operand mismatch");
  (* Phi without matching predecessors. *)
  let m3, f3, entry3 = fresh_fn () in
  let next = create_block ~name:"next" f3 in
  entry3.b_term <- Br next;
  let phi = mk_inst ~ty:I32 (Phi { incoming = [] }) in
  append_inst next phi;
  next.b_term <- Ret None;
  (match Verifier.check m3 with
  | Error e -> check_contains ~what:"phi" e "phi has 0 incoming values for 1"
  | Ok () -> Alcotest.fail "should report phi arity");
  (* Branch condition must be i1. *)
  let m4, f4, entry4 = fresh_fn () in
  let t4 = create_block ~name:"t" f4 in
  t4.b_term <- Ret None;
  entry4.b_term <- Cond_br (i32_const 1, t4, t4);
  match Verifier.check m4 with
  | Error e -> check_contains ~what:"cond" e "branch condition not i1"
  | Ok () -> Alcotest.fail "should report non-i1 condition"

let test_verifier_accepts_valid () =
  let m, f, entry = fresh_fn ~ret:I32 () in
  let loop = create_block ~name:"loop" f in
  let exit = create_block ~name:"exit" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  B.br b loop;
  B.set_insertion_point b loop;
  let iv = B.phi b ~name:"iv" I32 [ (i32_const 0, entry) ] in
  let next = B.add b iv (i32_const 1) in
  B.add_phi_incoming iv (next, loop);
  let c = B.icmp b Islt next (i32_const 10) in
  B.cond_br b c loop exit;
  B.set_insertion_point b exit;
  B.ret b (Some next);
  match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid IR rejected:\n%s" e

let test_printer () =
  let m, f, entry = fresh_fn ~name:"compute" ~ret:I32 () in
  let b = B.create () in
  B.set_insertion_point b entry;
  let p = B.alloca b ~name:"slot" I32 in
  B.store b (i32_const 11) ~ptr:p;
  let v = B.load b ~name:"v" I32 p in
  let r = B.call b ~ret:I32 (Runtime "omp_get_num_threads") [] in
  let sum = B.add b ~name:"sum" v r in
  B.ret b (Some sum);
  ignore f;
  let text = Printer.module_to_string m in
  check_contains ~what:"define" text "define i32 @compute()";
  check_contains ~what:"alloca" text "%slot = alloca i32";
  check_contains ~what:"store" text "store i32 11, ptr %slot";
  check_contains ~what:"load" text "%v = load i32, ptr %slot";
  check_contains ~what:"call" text "call i32 @omp_get_num_threads()";
  check_contains ~what:"ret" text "ret i32 %sum";
  (* Loop metadata rendering. *)
  entry.b_loop_md <- { entry.b_loop_md with md_unroll = Some (Unroll_count 4) };
  let text2 = Printer.module_to_string m in
  check_contains ~what:"md" text2 "!llvm.loop !{llvm.loop.unroll.count(4)}"

let test_successors_predecessors () =
  let _, f, entry = fresh_fn () in
  let a = create_block ~name:"a" f in
  let bb = create_block ~name:"b" f in
  let b = B.create ~fold:false () in
  B.set_insertion_point b entry;
  let c = B.icmp b Ieq (i32_const 1) (i32_const 1) in
  B.cond_br b c a bb;
  a.b_term <- Ret None;
  bb.b_term <- Ret None;
  Alcotest.(check int) "two successors" 2 (List.length (successors entry));
  Alcotest.(check int) "a preds" 1 (List.length (predecessors f a));
  (* Same-target cond_br counts once. *)
  entry.b_term <- Cond_br (c, a, a);
  Alcotest.(check int) "merged successor" 1 (List.length (successors entry))

let suite =
  [
    tc "builder constant folding" test_builder_constant_folding;
    tc "builder algebraic identities" test_builder_identities;
    tc "folding can be disabled (A4)" test_folding_disabled;
    tc "constant cond_br folds" test_cond_br_folding;
    tc "verifier rejects malformed IR" test_verifier_catches_issues;
    tc "verifier accepts a loop" test_verifier_accepts_valid;
    tc "printer output" test_printer;
    tc "CFG successors/predecessors" test_successors_predecessors;
  ]
