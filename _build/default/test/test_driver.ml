(* Driver-level tests: options, stage timings, virtual includes, error
   propagation — the public API surface the examples and mcc rely on. *)

open Helpers
module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

let test_stage_timings () =
  let result =
    Driver.compile
      "void record(long x);\nint main(void) { for (int i = 0; i < 50; i += 1) record(i); return 0; }"
  in
  let t = result.Driver.timings in
  List.iter
    (fun (what, v) ->
      if v < 0.0 then Alcotest.failf "%s negative" what)
    [
      ("lex", t.Driver.t_lex);
      ("preprocess", t.Driver.t_preprocess);
      ("parse+sema", t.Driver.t_parse_sema);
      ("codegen", t.Driver.t_codegen);
      ("passes", t.Driver.t_passes);
    ];
  Alcotest.(check bool) "ir produced" true (result.Driver.ir <> None)

let test_extra_files () =
  let options =
    {
      Driver.default_options with
      Driver.extra_files =
        [ ("config.h", "#define LIMIT 4\n#define STEP 2\n") ];
    }
  in
  let outcome =
    match
      Driver.compile_and_run ~options
        "#include \"config.h\"\nvoid record(long x);\n\
         int main(void) { for (int i = 0; i < LIMIT; i += STEP) record(i); return 0; }"
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "failed: %s" e
  in
  Alcotest.(check string) "include worked" "0;2"
    (trace_to_string outcome.Interp.trace)

let test_defines () =
  let options =
    { Driver.default_options with Driver.defines = [ ("N", "3") ] }
  in
  let outcome =
    match
      Driver.compile_and_run ~options
        "void record(long x);\nint main(void) { record(N * N); return 0; }"
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "failed: %s" e
  in
  Alcotest.(check string) "-D worked" "9" (trace_to_string outcome.Interp.trace)

let test_error_propagation () =
  (* Compile errors surface through compile_and_run. *)
  (match Driver.compile_and_run "int main(void) { return undefined_var; }" with
  | Error msg -> check_contains ~what:"diag" msg "use of undeclared identifier"
  | Ok _ -> Alcotest.fail "should fail");
  (* Runtime traps surface as errors, not exceptions. *)
  match
    Driver.compile_and_run
      "int zero(void) { return 0; }\nint main(void) { return 1 / zero(); }"
  with
  | Error msg -> check_contains ~what:"trap" msg "division by zero"
  | Ok _ -> Alcotest.fail "should trap"

let test_verify_ir_flag () =
  (* With verify_ir on (default), every compile goes through the verifier
     and the pass manager's inter-pass checks; this is a smoke test that a
     decently complex program stays verifiable at every stage. *)
  let source =
    "void record(long x);\n\
     long work(int n) {\n\
     long acc = 0;\n\
     #pragma omp parallel for reduction(+: acc) schedule(dynamic, 2)\n\
     #pragma omp unroll partial(3)\n\
     for (int i = 0; i < n; i += 1) acc += i * i;\n\
     return acc;\n}\n\
     int main(void) { record(work(40)); return 0; }"
  in
  List.iter
    (fun options ->
      let r = Driver.compile ~options source in
      Alcotest.(check bool) "compiled" true (r.Driver.ir <> None))
    [ classic; irbuilder; o0 classic; o0 irbuilder ]

let test_ast_dump_flags () =
  let source =
    "void record(long x);\nint main(void) {\n#pragma omp tile sizes(2)\n\
     for (int i = 0; i < 4; i += 1) record(i);\nreturn 0; }"
  in
  let plain = Driver.ast_dump source in
  let shadow = Driver.ast_dump ~shadow:true source in
  Alcotest.(check bool) "plain hides" false
    (contains_substring plain "<transformed>");
  check_contains ~what:"shadow shows" shadow "<transformed>";
  check_contains ~what:"floor iv" shadow ".floor.0.iv.i"

let test_step_counting_monotone () =
  (* More iterations must cost more interpreter steps. *)
  let steps n =
    let source =
      Printf.sprintf
        "void record(long x);\nint main(void) { long s = 0; for (int i = 0; i < %d; i += 1) s += i; record(s); return 0; }"
        n
    in
    (run_ok source).Interp.steps
  in
  let s10 = steps 10 and s100 = steps 100 in
  if s100 <= s10 then Alcotest.failf "steps not monotone: %d vs %d" s10 s100

let suite =
  [
    tc "stage timings populated" test_stage_timings;
    tc "virtual #include files" test_extra_files;
    tc "-D defines" test_defines;
    tc "errors and traps propagate" test_error_propagation;
    tc "verified IR at every stage" test_verify_ir_flag;
    tc "ast dump flags" test_ast_dump_flags;
    tc "step counting is monotone" test_step_counting_monotone;
  ]
