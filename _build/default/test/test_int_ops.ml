(* Unit and property tests for the fixed-width arithmetic shared by Sema's
   constant evaluator, the IRBuilder's folding, and the interpreter. *)

open Helpers
module I = Mc_support.Int_ops

let widths = [ I.i8; I.i16; I.i32; I.i64; I.u8; I.u16; I.u32; I.u64 ]

let arb_width = QCheck.oneofl widths
let arb_pair = QCheck.(pair arb_width (pair int64 int64))

let test_truncate_basics () =
  Alcotest.(check int64) "i8 wrap" (-128L) (I.truncate I.i8 128L);
  Alcotest.(check int64) "u8 wrap" 255L (I.truncate I.u8 (-1L));
  Alcotest.(check int64) "i32 id" 12345L (I.truncate I.i32 12345L);
  Alcotest.(check int64) "i32 sign" (-2147483648L) (I.truncate I.i32 0x80000000L);
  Alcotest.(check int64) "u32 keeps" 4294967295L (I.truncate I.u32 (-1L))

let test_min_max () =
  Alcotest.(check int64) "i8 min" (-128L) (I.min_value I.i8);
  Alcotest.(check int64) "i8 max" 127L (I.max_value I.i8);
  Alcotest.(check int64) "u8 min" 0L (I.min_value I.u8);
  Alcotest.(check int64) "u8 max" 255L (I.max_value I.u8);
  Alcotest.(check int64) "i64 min" Int64.min_int (I.min_value I.i64);
  Alcotest.(check int64) "i64 max" Int64.max_int (I.max_value I.i64)

let test_div_rem_edges () =
  Alcotest.(check (option int64)) "div by zero" None (I.div I.i32 5L 0L);
  Alcotest.(check (option int64)) "rem by zero" None (I.rem I.i32 5L 0L);
  Alcotest.(check (option int64))
    "INT_MIN / -1 overflows" None
    (I.div I.i32 (I.min_value I.i32) (-1L));
  Alcotest.(check (option int64)) "trunc toward zero" (Some (-2L)) (I.div I.i32 (-7L) 3L);
  Alcotest.(check (option int64)) "rem sign" (Some (-1L)) (I.rem I.i32 (-7L) 3L);
  (* u32: -1 is 4294967295 *)
  Alcotest.(check (option int64)) "unsigned div" (Some 2147483647L)
    (I.div I.u32 (I.truncate I.u32 (-1L)) 2L)

let test_shifts () =
  Alcotest.(check int64) "shl wraps width" 2L (I.shl I.i32 1L 33L);
  Alcotest.(check int64) "ashr sign" (-1L) (I.shr I.i32 (-2L) 1L);
  Alcotest.(check int64) "lshr unsigned" 2147483647L
    (I.shr I.u32 (I.truncate I.u32 (-1L)) 1L)

let test_to_string () =
  Alcotest.(check string) "u32 max" "4294967295" (I.to_string I.u32 (-1L));
  Alcotest.(check string) "i32" "-1" (I.to_string I.i32 (-1L));
  Alcotest.(check string) "u64 max" "18446744073709551615" (I.to_string I.u64 (-1L))

let test_convert () =
  Alcotest.(check int64) "sext i8->i32" (-1L)
    (I.convert ~from:I.i8 ~into:I.i32 (-1L));
  Alcotest.(check int64) "zext u8->i32" 255L
    (I.convert ~from:I.u8 ~into:I.i32 (I.truncate I.u8 (-1L)));
  Alcotest.(check int64) "trunc i32->u8" 255L
    (I.convert ~from:I.i32 ~into:I.u8 (-1L))

let props =
  [
    prop "truncate is idempotent" arb_pair (fun (w, (a, _)) ->
        let t = I.truncate w a in
        Int64.equal (I.truncate w t) t);
    prop "truncated values are in range" arb_pair (fun (w, (a, _)) ->
        I.in_range w (I.truncate w a));
    prop "add is commutative" arb_pair (fun (w, (a, b)) ->
        let a = I.truncate w a and b = I.truncate w b in
        Int64.equal (I.add w a b) (I.add w b a));
    prop "sub undoes add" arb_pair (fun (w, (a, b)) ->
        let a = I.truncate w a and b = I.truncate w b in
        Int64.equal (I.sub w (I.add w a b) b) a);
    prop "neg is sub from zero" arb_pair (fun (w, (a, _)) ->
        let a = I.truncate w a in
        Int64.equal (I.neg w a) (I.sub w 0L a));
    prop "bit_not involutive" arb_pair (fun (w, (a, _)) ->
        let a = I.truncate w a in
        Int64.equal (I.bit_not w (I.bit_not w a)) a);
    prop "div*b + rem = a (when defined)" arb_pair (fun (w, (a, b)) ->
        let a = I.truncate w a and b = I.truncate w b in
        match (I.div w a b, I.rem w a b) with
        | Some q, Some r -> Int64.equal (I.add w (I.mul w q b) r) a
        | _ -> true);
    prop "lt is irreflexive and asymmetric" arb_pair (fun (w, (a, b)) ->
        let a = I.truncate w a and b = I.truncate w b in
        (not (I.lt w a a)) && not (I.lt w a b && I.lt w b a));
    prop "le = lt or eq" arb_pair (fun (w, (a, b)) ->
        let a = I.truncate w a and b = I.truncate w b in
        Bool.equal (I.le w a b) (I.lt w a b || Int64.equal a b));
    prop "convert widening preserves order" QCheck.(pair int64 int64)
      (fun (a, b) ->
        let a = I.truncate I.i32 a and b = I.truncate I.i32 b in
        let a64 = I.convert ~from:I.i32 ~into:I.i64 a in
        let b64 = I.convert ~from:I.i32 ~into:I.i64 b in
        Bool.equal (I.lt I.i32 a b) (I.lt I.i64 a64 b64));
    prop "to_string round-trips through Int64.of_string" arb_pair
      (fun (w, (a, _)) ->
        let a = I.truncate w a in
        let s = I.to_string w a in
        let parsed =
          if w.I.signed then Int64.of_string s
          else I.truncate w (Int64.of_string ("0u" ^ s))
        in
        Int64.equal parsed a);
  ]

let suite =
  [
    tc "truncate basics" test_truncate_basics;
    tc "min/max values" test_min_max;
    tc "division edge cases" test_div_rem_edges;
    tc "shifts" test_shifts;
    tc "to_string signedness" test_to_string;
    tc "conversions" test_convert;
  ]
  @ props
