(* Shared helpers for the test suites. *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp
module Diag = Mc_diag.Diagnostics

let classic = Driver.default_options
let irbuilder = { Driver.default_options with Driver.use_irbuilder = true }
let o0 options = { options with Driver.optimize = false }

let trace_to_string trace =
  String.concat ";"
    (List.map
       (function
         | Interp.T_int v -> Int64.to_string v
         | Interp.T_float f -> Printf.sprintf "%h" f)
       trace)

(* Compile and run; fails the test on any diagnostic error or trap. *)
let run_ok ?(options = classic) ?(num_threads = 4) source =
  let config = { Interp.default_config with Interp.num_threads } in
  match Driver.compile_and_run ~options ~config source with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "program failed:\n%s" msg

let trace_of ?options ?num_threads source =
  (run_ok ?options ?num_threads source).Interp.trace

(* The core differential harness: for each team size, the observable trace
   must be identical across both OpenMP lowering paths, optimization levels
   and folding settings (the reference is classic -O0 at that size — traces
   may legitimately depend on the team size, e.g. when recording thread
   ids, but never on the compilation configuration). *)
let assert_all_configs_agree ?(threads = [ 1; 3; 4 ]) ~name source =
  List.iter
    (fun num_threads ->
      let reference = trace_of ~options:(o0 classic) ~num_threads source in
      if reference = [] then
        Alcotest.failf "%s: reference trace is empty (test would be vacuous)"
          name;
      List.iter
        (fun (label, options) ->
          let trace = trace_of ~options ~num_threads source in
          if not (Interp.trace_equal reference trace) then
            Alcotest.failf
              "%s: %s with %d threads diverges:\nexpected %s\ngot      %s" name
              label num_threads (trace_to_string reference)
              (trace_to_string trace))
        [
          ("classic -O1", classic);
          ("irbuilder -O0", o0 irbuilder);
          ("irbuilder -O1", irbuilder);
          ("classic -O1 -no-fold", { classic with Driver.fold = false });
          ("irbuilder -O1 -no-fold", { irbuilder with Driver.fold = false });
        ])
    threads

let expect_error ?(options = classic) ~substring source =
  let diag, _ = Driver.frontend ~options source in
  let rendered = Diag.render_all diag in
  if not (Diag.has_errors diag) then
    Alcotest.failf "expected a diagnostic containing %S, got none" substring;
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  if not (contains rendered substring) then
    Alcotest.failf "expected a diagnostic containing %S, got:\n%s" substring
      rendered

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains ~what haystack needle =
  if not (contains_substring haystack needle) then
    Alcotest.failf "%s: expected to find %S in:\n%s" what needle haystack

let tc name f = Alcotest.test_case name `Quick f

(* A little wrapper making qcheck tests uniform. *)
let prop name ?(count = 200) arbitrary f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary f)
