(* Differential fuzzing: a generator of random (but always well-formed)
   C-subset programs with OpenMP loop directives, whose observable traces
   must agree across {classic, irbuilder} x {-O0, -O1}.

   The generator is deliberately biased toward the constructs the paper is
   about: canonical for-loops with assorted init/cond/incr shapes, unroll
   and tile with random factors/sizes, composition of transformations, and
   worksharing on top.  Every generated program records enough intermediate
   values that miscompilations cannot hide. *)

open Helpers
module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp

(* A tiny deterministic PRNG so failures reproduce from the seed. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

  let next t =
    (* xorshift64* *)
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_right_logical x 12) in
    let x = Int64.logxor x (Int64.shift_left x 25) in
    let x = Int64.logxor x (Int64.shift_right_logical x 27) in
    t.state <- x;
    Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 33)

  let int t bound = if bound <= 0 then 0 else next t mod bound
  let pick t list = List.nth list (int t (List.length list))
end

(* ---- random expression over in-scope integer variables ----------------- *)

let rec gen_expr rng depth vars =
  if depth = 0 || Rng.int rng 3 = 0 then
    match Rng.int rng 3 with
    | 0 -> string_of_int (Rng.int rng 20 - 5)
    | _ when vars <> [] -> Rng.pick rng vars
    | _ -> string_of_int (Rng.int rng 9 + 1)
  else begin
    let a = gen_expr rng (depth - 1) vars in
    let b = gen_expr rng (depth - 1) vars in
    match Rng.int rng 8 with
    | 0 -> Printf.sprintf "(%s + %s)" a b
    | 1 -> Printf.sprintf "(%s - %s)" a b
    | 2 -> Printf.sprintf "(%s * %s)" a b
    | 3 -> Printf.sprintf "(%s ^ %s)" a b
    | 4 -> Printf.sprintf "(%s & %s)" a b
    | 5 -> Printf.sprintf "(%s | (%s >> 1))" a b
    | 6 -> Printf.sprintf "(%s < %s ? %s : %s)" a b b a
    | _ -> Printf.sprintf "(%s %% 7 + %s)" a b
  end

(* ---- random canonical loop headers -------------------------------------- *)

type loop_shape = { header : string; var : string }

let gen_loop_header rng var =
  let lb = Rng.int rng 6 in
  let extent = 1 + Rng.int rng 12 in
  let step = 1 + Rng.int rng 4 in
  let ub = lb + (extent * step) - Rng.int rng step in
  match Rng.int rng 6 with
  | 0 ->
    { header = Printf.sprintf "for (int %s = %d; %s < %d; %s += %d)" var lb var ub var step;
      var }
  | 1 ->
    { header = Printf.sprintf "for (int %s = %d; %s <= %d; %s += %d)" var lb var ub var step;
      var }
  | 2 ->
    { header = Printf.sprintf "for (int %s = %d; %s > %d; %s -= %d)" var ub var lb var step;
      var }
  | 3 ->
    { header = Printf.sprintf "for (int %s = %d; %s >= %d; %s -= %d)" var ub var lb var step;
      var }
  | 4 ->
    { header = Printf.sprintf "for (int %s = %d; %d > %s; %s = %s + %d)" var lb ub var var var step;
      var }
  | _ ->
    { header = Printf.sprintf "for (int %s = %d; %s != %d; ++%s)" var lb var (lb + extent) var;
      var }

(* ---- random directive + loop nest --------------------------------------- *)

let gen_loop_block rng index =
  let buf = Buffer.create 256 in
  let v = Printf.sprintf "i%d" index in
  let body vars =
    Printf.sprintf "record(%d + %s);" (index * 1000) (gen_expr rng 2 vars)
  in
  (match Rng.int rng 9 with
  | 0 ->
    (* plain loop, maybe with acc *)
    let l = gen_loop_header rng v in
    Buffer.add_string buf (Printf.sprintf "%s { %s }\n" l.header (body [ v ]))
  | 1 ->
    let factor = 1 + Rng.int rng 8 in
    let l = gen_loop_header rng v in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp unroll partial(%d)\n%s { %s }\n" factor
         l.header (body [ v ]))
  | 2 ->
    let l = gen_loop_header rng v in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp unroll %s\n%s { %s }\n"
         (Rng.pick rng [ "full"; "" ])
         l.header (body [ v ]))
  | 3 ->
    let size = 1 + Rng.int rng 6 in
    let l = gen_loop_header rng v in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp tile sizes(%d)\n%s { %s }\n" size l.header
         (body [ v ]))
  | 4 ->
    (* 2-D tile *)
    let s1 = 1 + Rng.int rng 4 and s2 = 1 + Rng.int rng 4 in
    let w = v ^ "b" in
    let l1 = gen_loop_header rng v in
    let l2 = gen_loop_header rng w in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp tile sizes(%d, %d)\n%s\n%s { %s }\n" s1 s2
         l1.header l2.header
         (body [ v; w ]))
  | 5 ->
    (* OpenMP 6.0 preview: reverse, possibly under worksharing *)
    let l = gen_loop_header rng v in
    let prefix = Rng.pick rng [ ""; "#pragma omp parallel for\n" ] in
    Buffer.add_string buf
      (Printf.sprintf "%s#pragma omp reverse\n%s { %s }\n" prefix l.header
         (body [ v ]))
  | 6 ->
    (* OpenMP 6.0 preview: interchange of a 2-nest *)
    let w = v ^ "b" in
    let l1 = gen_loop_header rng v in
    let l2 = gen_loop_header rng w in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp interchange\n%s\n%s { %s }\n" l1.header
         l2.header
         (body [ v; w ]))
  | 7 ->
    (* OpenMP 6.0 preview: fuse a short loop sequence *)
    let w = v ^ "b" in
    let l1 = gen_loop_header rng v in
    let l2 = gen_loop_header rng w in
    Buffer.add_string buf
      (Printf.sprintf "#pragma omp fuse\n{\n%s { %s }\n%s { %s }\n}\n"
         l1.header
         (body [ v ])
         l2.header
         (body [ w ]))
  | _ ->
    (* worksharing over a transformation *)
    let factor = 2 + Rng.int rng 4 in
    let l = gen_loop_header rng v in
    let acc = Printf.sprintf "acc%d" index in
    Buffer.add_string buf (Printf.sprintf "long %s = 0;\n" acc);
    let sched =
      Rng.pick rng
        [ ""; " schedule(static, 2)"; " schedule(dynamic)";
          " schedule(dynamic, 3)"; " schedule(guided)" ]
    in
    Buffer.add_string buf
      (Printf.sprintf
         "#pragma omp parallel for reduction(+: %s)%s\n\
          #pragma omp unroll partial(%d)\n%s { %s += %s; }\n\
          record(%s);\n"
         acc sched factor l.header acc (gen_expr rng 2 [ v ]) acc));
  Buffer.contents buf

let gen_program seed =
  let rng = Rng.create seed in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "void record(long x);\nint main(void) {\n";
  let blocks = 1 + Rng.int rng 4 in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf (gen_loop_block rng i)
  done;
  Buffer.add_string buf "return 0;\n}\n";
  Buffer.contents buf

(* ---- the differential property ------------------------------------------- *)

let configs =
  [
    ("classic -O1", classic);
    ("irbuilder -O0", o0 irbuilder);
    ("irbuilder -O1", irbuilder);
  ]

let check_seed seed =
  let source = gen_program seed in
  match Driver.compile_and_run ~options:(o0 classic) source with
  | Error msg ->
    Alcotest.failf "seed %d: reference failed:\n%s\n--- source ---\n%s" seed msg
      source
  | Ok reference ->
    if reference.Interp.trace = [] then ()
    else
      List.iter
        (fun (label, options) ->
          match Driver.compile_and_run ~options source with
          | Error msg ->
            Alcotest.failf "seed %d: %s failed:\n%s\n--- source ---\n%s" seed
              label msg source
          | Ok outcome ->
            if
              not (Interp.trace_equal reference.Interp.trace outcome.Interp.trace)
            then
              Alcotest.failf
                "seed %d: %s diverges\nexpected %s\ngot      %s\n--- source ---\n%s"
                seed label
                (trace_to_string reference.Interp.trace)
                (trace_to_string outcome.Interp.trace)
                source)
        configs

let test_fuzz_batch lo hi () =
  for seed = lo to hi do
    check_seed seed
  done

(* ---- constant-expression bit-exactness ------------------------------------ *)

(* Sema's compile-time evaluator and the compiled program must agree
   bit-for-bit on every constant expression (they share Int_ops, but the
   code paths — folding, passes, interpretation — are entirely different). *)
let gen_const_expr rng =
  let rec go depth =
    if depth = 0 then string_of_int (Rng.int rng 41 - 20)
    else begin
      let a = go (depth - 1) and b = go (depth - 1) in
      match Rng.int rng 11 with
      | 0 -> Printf.sprintf "(%s + %s)" a b
      | 1 -> Printf.sprintf "(%s - %s)" a b
      | 2 -> Printf.sprintf "(%s * %s)" a b
      | 3 -> Printf.sprintf "(%s / (%s | 1))" a b (* avoid zero divisors *)
      | 4 -> Printf.sprintf "(%s %% (%s | 1))" a b
      | 5 -> Printf.sprintf "(%s << (%s & 7))" a b
      | 6 -> Printf.sprintf "(%s >> (%s & 7))" a b
      | 7 -> Printf.sprintf "(%s ^ %s)" a b
      | 8 -> Printf.sprintf "(%s < %s ? %s : ~%s)" a b b a
      | 9 -> Printf.sprintf "((0 - %s) | %s)" a b
      | _ -> Printf.sprintf "((%s && %s) + %s)" a b b
    end
  in
  go (2 + Rng.int rng 2)

let check_const_seed seed =
  let rng = Rng.create (seed + 777) in
  let expr = gen_const_expr rng in
  let source =
    Printf.sprintf
      "void record(long x);\nint main(void) { record(%s); return 0; }" expr
  in
  (* Compile-time value via Sema's evaluator on the same AST. *)
  let diag, tu = Driver.frontend source in
  if Mc_diag.Diagnostics.has_errors diag then
    Alcotest.failf "seed %d: %s rejected:\n%s" seed expr
      (Mc_diag.Diagnostics.render_all diag);
  let static_value = ref None in
  List.iter
    (function
      | Mc_ast.Tree.Tu_fn { fn_body = Some body; _ } ->
        Mc_ast.Visit.iter ~shadow:false
          ~on_expr:(fun e ->
            match e.Mc_ast.Tree.e_kind with
            | Mc_ast.Tree.Call (_, [ arg ]) when !static_value = None ->
              static_value := Mc_sema.Const_eval.eval_int arg
            | _ -> ())
          body
      | _ -> ())
    tu.Mc_ast.Tree.tu_decls;
  match !static_value with
  | None -> () (* e.g. signed-overflow division rejected by the evaluator *)
  | Some expected -> (
    List.iter
      (fun options ->
        match Driver.compile_and_run ~options source with
        | Ok { Interp.trace = [ Interp.T_int got ]; _ } ->
          if not (Int64.equal got expected) then
            Alcotest.failf "seed %d: %s: const-eval says %Ld, execution says %Ld"
              seed expr expected got
        | Ok _ -> Alcotest.failf "seed %d: unexpected trace" seed
        | Error e -> Alcotest.failf "seed %d: %s failed: %s" seed expr e)
      [ o0 classic; classic; { classic with Driver.fold = false } ])

let test_const_exprs lo hi () =
  for seed = lo to hi do
    check_const_seed seed
  done

let suite =
  [
    tc "random programs seeds 0-49" (test_fuzz_batch 0 49);
    tc "random programs seeds 50-99" (test_fuzz_batch 50 99);
    tc "random programs seeds 100-149" (test_fuzz_batch 100 149);
    tc "random programs seeds 150-199" (test_fuzz_batch 150 199);
    tc "const-eval agrees with execution (300 exprs)" (test_const_exprs 0 299);
  ]
