(* Mid-end pass tests: dominators, mem2reg, const-prop, DCE, simplify-cfg,
   and the LoopUnroll pass (experiments L1/C4). *)

open Helpers
open Mc_ir.Ir
module B = Mc_ir.Builder
module Dominators = Mc_passes.Dominators
module Loop_info = Mc_passes.Loop_info
module Trip_count = Mc_passes.Trip_count
module Mem2reg = Mc_passes.Mem2reg
module Const_prop = Mc_passes.Const_prop
module Dce = Mc_passes.Dce
module Simplify_cfg = Mc_passes.Simplify_cfg
module Loop_unroll = Mc_passes.Loop_unroll
module Pass_manager = Mc_passes.Pass_manager
module Verifier = Mc_ir.Verifier
module Interp = Mc_interp.Interp
module Driver = Mc_core.Driver

(* A diamond CFG with a loop:
   entry -> header; header -> {left, right}; left,right -> merge;
   merge -> {header (back), exit} *)
let diamond_loop () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let header = create_block ~name:"header" f in
  let left = create_block ~name:"left" f in
  let right = create_block ~name:"right" f in
  let merge = create_block ~name:"merge" f in
  let exit = create_block ~name:"exit" f in
  let b = B.create ~fold:false () in
  B.set_insertion_point b entry;
  B.br b header;
  B.set_insertion_point b header;
  let c = B.call b ~ret:I1 (Runtime "__kmpc_single") [] in
  B.cond_br b c left right;
  left.b_term <- Br merge;
  right.b_term <- Br merge;
  B.set_insertion_point b merge;
  let c2 = B.call b ~ret:I1 (Runtime "__kmpc_single") [] in
  B.cond_br b c2 header exit;
  exit.b_term <- Ret None;
  (m, f, entry, header, left, right, merge, exit)

let test_dominators () =
  let _, f, entry, header, left, right, merge, exit = diamond_loop () in
  let dom = Dominators.compute f in
  let check_dom what a bb expected =
    Alcotest.(check bool) what expected (Dominators.dominates dom a bb)
  in
  check_dom "entry dom all" entry exit true;
  check_dom "header dom merge" header merge true;
  check_dom "left !dom merge" left merge false;
  check_dom "right !dom merge" right merge false;
  check_dom "reflexive" left left true;
  check_dom "merge !dom header (back edge)" merge header false;
  Alcotest.(check bool) "idom of merge is header" true
    (match Dominators.idom dom merge with Some d -> d == header | None -> false);
  (* Dominance frontier: left's frontier is merge; header's contains header
     (it is a loop header). *)
  Alcotest.(check bool) "df(left) = {merge}" true
    (List.exists (fun x -> x == merge) (Dominators.dominance_frontier dom left));
  Alcotest.(check bool) "df(header) contains header" true
    (List.exists (fun x -> x == header) (Dominators.dominance_frontier dom header))

let test_loop_detection () =
  let _, f, _, header, _, _, merge, _ = diamond_loop () in
  let dom = Dominators.compute f in
  match Loop_info.find_loops dom f with
  | [ loop ] ->
    Alcotest.(check bool) "header" true (loop.Loop_info.header == header);
    Alcotest.(check (list string)) "latch" [ "merge" ]
      (List.map (fun b -> b.b_name) loop.Loop_info.latches);
    Alcotest.(check int) "blocks" 4 (List.length loop.Loop_info.blocks);
    Alcotest.(check bool) "preheader" true
      (match loop.Loop_info.preheader with
      | Some p -> p.b_name = "entry"
      | None -> false);
    ignore merge
  | loops -> Alcotest.failf "expected 1 loop, got %d" (List.length loops)

(* mem2reg / trip count exercised through real compilations. *)
let compile_ir ?(options = classic) source =
  let result = Driver.compile ~options source in
  if Mc_diag.Diagnostics.has_errors result.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all result.Driver.diag);
  match result.Driver.ir with
  | Some m -> (m, result)
  | None -> Alcotest.failf "no IR: %s" (Option.value result.Driver.codegen_error ~default:"?")

(* Property: CHK dominators agree with the naive definition (a dominates b
   iff removing a disconnects b from entry) on random CFGs. *)
let test_dominators_vs_naive () =
  let rng = ref 123456789 in
  let rand bound =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) mod bound
  in
  for _trial = 0 to 60 do
    let m = create_module "t" in
    let f = define_function m ~name:"main" ~ret:Void ~args:[] in
    let n = 4 + rand 8 in
    let blocks =
      List.init n (fun i -> create_block ~name:(Printf.sprintf "b%d" i) f)
    in
    let nth = List.nth blocks in
    (* Random terminators; entry is b0. *)
    List.iteri
      (fun i b ->
        ignore i;
        match rand 4 with
        | 0 -> b.b_term <- Ret None
        | 1 -> b.b_term <- Br (nth (rand n))
        | _ ->
          let c =
            (* An opaque i1 so nothing folds. *)
            let inst = mk_inst ~ty:I1 (Call { callee = Runtime "__kmpc_single"; args = [] }) in
            append_inst b inst;
            Inst_ref inst
          in
          b.b_term <- Cond_br (c, nth (rand n), nth (rand n)))
      blocks;
    let dom = Dominators.compute f in
    let reachable_without blocked =
      let seen = Hashtbl.create 16 in
      let rec dfs b =
        if (not (Hashtbl.mem seen b.b_id)) && not (b == blocked) then begin
          Hashtbl.add seen b.b_id ();
          List.iter dfs (successors b)
        end
      in
      (match blocked == List.hd blocks with
      | true -> ()
      | false -> dfs (List.hd blocks));
      seen
    in
    List.iter
      (fun a ->
        let cut = reachable_without a in
        List.iter
          (fun b ->
            if Dominators.is_reachable dom b then begin
              let expected =
                a == b || not (Hashtbl.mem cut b.b_id)
              in
              let got = Dominators.dominates dom a b in
              if expected <> got then
                Alcotest.failf "dominates(%s, %s): naive %b, CHK %b" a.b_name
                  b.b_name expected got
            end)
          blocks)
      blocks
  done

let test_mem2reg_promotes () =
  let source =
    "void record(long x);\nint main(void) {\n\
     int sum = 0;\nfor (int i = 0; i < 10; i += 1) sum += i;\n\
     record(sum);\nreturn 0; }"
  in
  let m, _ = compile_ir ~options:(o0 classic) source in
  let before = Interp.run_main m in
  let promoted = Mem2reg.run m in
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid after mem2reg:\n%s" e);
  if promoted < 2 then Alcotest.failf "expected >=2 promotions, got %d" promoted;
  let after = Interp.run_main m in
  Alcotest.(check bool) "same trace" true
    (Interp.trace_equal before.Interp.trace after.Interp.trace);
  (* The promoted loop now has phis in its header. *)
  let main = Option.get (find_function m "main") in
  let has_phi =
    List.exists (fun bb -> block_phis bb <> []) main.f_blocks
  in
  Alcotest.(check bool) "phis created" true has_phi

let test_mem2reg_respects_address_taken () =
  let source =
    "void record(long x);\nvoid bump(int *p) { *p = *p + 1; }\n\
     int main(void) { int x = 1; bump(&x); record(x); return 0; }"
  in
  let m, _ = compile_ir ~options:(o0 classic) source in
  ignore (Mem2reg.run m);
  let outcome = Interp.run_main m in
  Alcotest.(check string) "escaped alloca survives" "2"
    (trace_to_string outcome.Interp.trace)

let test_const_prop_and_dce () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
  let entry = create_block ~name:"entry" f in
  let dead_b = create_block ~name:"deadbranch" f in
  let live_b = create_block ~name:"live" f in
  let b = B.create ~fold:false () in
  B.set_insertion_point b entry;
  let x = B.add b (i32_const 2) (i32_const 3) in
  let unused = B.mul b x (i32_const 100) in
  ignore unused;
  let c = B.icmp b Islt x (i32_const 3) in
  B.cond_br b c dead_b live_b;
  B.set_insertion_point b dead_b;
  B.ret b (Some (i32_const 111));
  B.set_insertion_point b live_b;
  B.ret b (Some x);
  Alcotest.(check bool) "constprop changed" true (Const_prop.run m);
  ignore (Dce.run m);
  Alcotest.(check bool) "simplifycfg changed" true (Simplify_cfg.run m);
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid:\n%s" e);
  let outcome = Interp.run_main m in
  Alcotest.(check (option int64)) "returns 5" (Some 5L) outcome.Interp.return_value;
  (* Everything folded to a straight return. *)
  Alcotest.(check int) "single block" 1 (List.length f.f_blocks);
  Alcotest.(check int) "no instructions" 0 (func_inst_count f)

let test_trip_count_analysis () =
  let source =
    "int main(void) { int sum = 0;\n\
     for (int i = 3; i < 40; i += 4) sum += i;\nreturn sum; }"
  in
  let m, _ = compile_ir ~options:(o0 classic) source in
  ignore (Simplify_cfg.run m);
  ignore (Mem2reg.run m);
  let main = Option.get (find_function m "main") in
  let dom = Dominators.compute main in
  match Loop_info.find_loops dom main with
  | [ loop ] -> (
    match Trip_count.analyze main loop with
    | Some a ->
      Alcotest.(check int64) "step" 4L a.Trip_count.step;
      (match a.Trip_count.init with
      | Const_int (_, 3L) -> ()
      | _ -> Alcotest.fail "init should be 3");
      Alcotest.(check (option int64)) "trip count = ceil(37/4)" (Some 10L)
        (Trip_count.constant_trip_count a)
    | None -> Alcotest.fail "loop should be affine")
  | loops -> Alcotest.failf "expected 1 loop, got %d" (List.length loops)

let test_constant_trip_counts () =
  (* Direct checks of the counting math through full compilations at -O1:
     full unroll leaves no loop iff the count was computed right, and the
     trace length tells us the count. *)
  List.iter
    (fun (loop, expected) ->
      let src =
        "void record(long x);\nint main(void) {\n#pragma omp unroll full\n"
        ^ loop ^ "\nreturn 0; }"
      in
      let t = trace_of ~options:classic src in
      Alcotest.(check int) loop expected (List.length t))
    [
      ("for (int i = 0; i < 10; i += 1) record(i);", 10);
      ("for (int i = 0; i <= 10; i += 1) record(i);", 11);
      ("for (int i = 7; i < 17; i += 3) record(i);", 4);
      ("for (int i = 10; i > 0; i -= 1) record(i);", 10);
      ("for (int i = 10; i >= 0; i -= 2) record(i);", 6);
      ("for (int i = 0; i != 6; i += 1) record(i);", 6);
      ("for (unsigned i = 0; i < 5u; i += 1) record(i);", 5);
    ]

let test_unroll_full_removes_loop () =
  let source =
    "void record(long x);\nint main(void) {\nlong s = 0;\n\
     #pragma omp unroll full\nfor (int i = 0; i < 8; i += 1) s += i * i;\n\
     record(s);\nreturn 0; }"
  in
  let m, result = compile_ir ~options:classic source in
  Alcotest.(check int) "fully unrolled once" 1
    result.Driver.unroll_stats.Loop_unroll.fully_unrolled;
  let main = Option.get (find_function m "main") in
  let dom = Dominators.compute main in
  Alcotest.(check int) "no loops remain" 0
    (List.length (Loop_info.find_loops dom main));
  let outcome = Interp.run_main m in
  Alcotest.(check string) "value" "140" (trace_to_string outcome.Interp.trace)

let test_unroll_partial_structure () =
  (* Listing 1: the unrolled loop plus a remainder loop. *)
  let source =
    "void record(long x);\nint main(void) {\nint n = 11;\nlong s = 0;\n\
     #pragma omp unroll partial(4)\nfor (int i = 0; i < n; i += 1) s += i;\n\
     record(s);\nreturn 0; }"
  in
  let m, result = compile_ir ~options:classic source in
  Alcotest.(check int) "partially unrolled once" 1
    result.Driver.unroll_stats.Loop_unroll.partially_unrolled;
  let main = Option.get (find_function m "main") in
  let dom = Dominators.compute main in
  let loops = Loop_info.find_loops dom main in
  Alcotest.(check int) "unrolled + remainder loops" 2 (List.length loops);
  let outcome = Interp.run_main m in
  Alcotest.(check string) "value" "55" (trace_to_string outcome.Interp.trace)

let test_unroll_skips_unsafe () =
  (* A loop whose bound is re-loaded from memory mutated in the body cannot
     be unrolled in Listing-1 form; the pass must skip, not miscompile. *)
  let source =
    "void record(long x);\nint main(void) {\nint n = 10;\nint i = 0;\n\
     #pragma clang loop unroll_count(4)\nwhile (i < n) { if (i == 3) n = 6; \
     record(i); i += 1; }\nreturn 0; }"
  in
  let t0 = trace_of ~options:(o0 classic) source in
  let t1 = trace_of ~options:classic source in
  Alcotest.(check bool) "same trace despite skip" true (Interp.trace_equal t0 t1)

let test_unroll_factor_sweep_semantics () =
  List.iter
    (fun factor ->
      List.iter
        (fun n ->
          let src =
            Printf.sprintf
              "void record(long x);\nint main(void) {\nint n = %d;\n\
               #pragma omp unroll partial(%d)\n\
               for (int i = 0; i < n; i += 1) record(2 * i + 1);\nreturn 0; }"
              n factor
          in
          let expected =
            String.concat ";" (List.init n (fun i -> string_of_int ((2 * i) + 1)))
          in
          let got = trace_to_string (trace_of ~options:classic src) in
          Alcotest.(check string)
            (Printf.sprintf "factor %d n %d" factor n)
            expected got)
        [ 0; 1; 3; 4; 7; 8; 9 ])
    [ 2; 3; 4; 8 ]

let test_while_loop_unrolls () =
  (* #pragma clang loop on a while loop: after mem2reg the while shape is
     affine and the unroller handles it (the paper's classic-path pipeline
     for LoopHintAttr). *)
  let source =
    "void record(long x);\nint main(void) {\nlong s = 0;\nint i = 0;\n\
     #pragma clang loop unroll_count(4)\nwhile (i < 100) { s += i; i += 1; }\n\
     record(s);\nreturn 0; }"
  in
  let _, result = compile_ir ~options:classic source in
  Alcotest.(check int) "partially unrolled" 1
    result.Driver.unroll_stats.Loop_unroll.partially_unrolled;
  Alcotest.(check string) "sum" "4950"
    (trace_to_string (trace_of ~options:classic source));
  (* do-while too *)
  let source2 =
    "void record(long x);\nint main(void) {\nlong s = 0;\nint i = 0;\n\
     #pragma clang loop unroll_count(2)\ndo { s += i; i += 1; } while (i < 50);\n\
     record(s);\nreturn 0; }"
  in
  Alcotest.(check string) "do-while sum" "1225"
    (trace_to_string (trace_of ~options:classic source2))

let test_heuristic_factor () =
  Alcotest.(check (option int)) "tiny loop goes full" None
    (Loop_unroll.choose_heuristic_factor ~body_size:4 ~trip_count:(Some 8L));
  Alcotest.(check (option int)) "small body gets 8" (Some 8)
    (Loop_unroll.choose_heuristic_factor ~body_size:10 ~trip_count:None);
  Alcotest.(check (option int)) "large body not unrolled" (Some 1)
    (Loop_unroll.choose_heuristic_factor ~body_size:500 ~trip_count:None)

let test_pass_manager () =
  let source =
    "void record(long x);\nint main(void) { record(40 + 2); return 0; }"
  in
  let m, _ = compile_ir ~options:(o0 classic) source in
  let report = Pass_manager.run ~verify_between:true ~passes:Pass_manager.o1 m in
  Alcotest.(check int) "all passes ran" (List.length Pass_manager.o1)
    (List.length report.Pass_manager.pass_results);
  (match Pass_manager.run ~passes:[ "nonsense" ] m with
  | exception Invalid_argument msg -> check_contains ~what:"unknown" msg "nonsense"
  | _ -> Alcotest.fail "unknown pass should raise")

let suite =
  [
    tc "dominator tree" test_dominators;
    tc "natural loop detection" test_loop_detection;
    tc "dominators agree with the naive definition" test_dominators_vs_naive;
    tc "mem2reg promotes and preserves" test_mem2reg_promotes;
    tc "mem2reg keeps escaped allocas" test_mem2reg_respects_address_taken;
    tc "constprop + dce + simplifycfg" test_const_prop_and_dce;
    tc "affine trip-count analysis" test_trip_count_analysis;
    tc "constant trip counts (all cmp forms)" test_constant_trip_counts;
    tc "L1: full unroll removes the loop" test_unroll_full_removes_loop;
    tc "L1: partial unroll leaves unrolled + remainder" test_unroll_partial_structure;
    tc "unroll skips unsafe loops" test_unroll_skips_unsafe;
    tc "unroll factor sweep semantics" test_unroll_factor_sweep_semantics;
    tc "while/do loops unroll via LoopHintAttr" test_while_loop_unrolls;
    tc "C4: heuristic factor choice" test_heuristic_factor;
    tc "pass manager" test_pass_manager;
  ]
