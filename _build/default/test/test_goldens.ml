(* Golden tests for the paper's AST listings (Figs. 2, 6, 7, 9) and the IR
   loop skeleton (Fig. 10).  The goldens assert the structural lines the
   paper shows, insensitive to the exact indentation prefix. *)

open Helpers
module Driver = Mc_core.Driver

(* Every [expected] line must appear in [dump], in order (substring match
   per line, so tree-art prefixes don't matter). *)
let check_lines_in_order ~what dump expected =
  let lines = String.split_on_char '\n' dump in
  let rec go lines = function
    | [] -> ()
    | needle :: rest -> (
      match
        List.filteri
          (fun _ line -> contains_substring line needle)
          lines
      with
      | [] ->
        Alcotest.failf "%s: line %S not found (in order) in:\n%s" what needle dump
      | _ ->
        (* advance past the first occurrence *)
        let rec drop = function
          | [] -> []
          | l :: ls -> if contains_substring l needle then ls else drop ls
        in
        go (drop lines) rest)
  in
  go lines expected

let fig2_source =
  "void body(int i);\n\
   int main(void) {\n\
   #pragma omp parallel for schedule(static)\n\
   for (int i = 7; i < 17; i += 3)\n\
   body(i);\n\
   return 0; }"

let test_fig2_astdump () =
  let dump = Driver.ast_dump fig2_source in
  check_lines_in_order ~what:"Fig 2b" dump
    [
      "OMPParallelForDirective";
      "OMPScheduleClause static";
      "CapturedStmt";
      "CapturedDecl nothrow";
      "ForStmt";
      "DeclStmt";
      "used i 'int' cinit";
      "IntegerLiteral 'int' 7";
      "CallExpr 'void'";
      "ImplicitParamDecl implicit .global_tid.";
      "ImplicitParamDecl implicit .bound_tid.";
      "ImplicitParamDecl implicit __context";
      "VarDecl";
    ]

let fig6_source =
  "void body(int i);\n\
   int main(void) {\n\
   #pragma omp unroll full\n\
   #pragma omp unroll partial(2)\n\
   for (int i = 7; i < 17; i += 3)\n\
   body(i);\n\
   return 0; }"

let test_fig6_astdump () =
  let dump = Driver.ast_dump fig6_source in
  check_lines_in_order ~what:"Fig 6b" dump
    [
      "OMPUnrollDirective";
      "OMPFullClause";
      "OMPUnrollDirective";
      "OMPPartialClause";
      "ConstantExpr 'int'";
      "value: Int 2";
      "IntegerLiteral 'int' 2";
      "ForStmt";
      "DeclStmt";
      "VarDecl";
      "IntegerLiteral 'int' 7";
      "<<<NULL>>>";
      "CallExpr 'void'";
    ];
  (* The outer (full) directive has no shadow transformed AST; the inner
     (partial) one does — visible only in the shadow dump. *)
  let shadow = Driver.ast_dump ~shadow:true fig6_source in
  check_contains ~what:"shadow reveals" shadow "<transformed>"

let test_fig7_transformed () =
  let _, tu = Driver.frontend fig6_source in
  let inner = ref None in
  List.iter
    (function
      | Mc_ast.Tree.Tu_fn { fn_body = Some body; _ } ->
        Mc_ast.Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Mc_ast.Tree.Omp_directive d
              when d.Mc_ast.Tree.dir_kind = Mc_ast.Tree.D_unroll
                   && d.Mc_ast.Tree.dir_transformed <> None ->
              inner := Some d
            | _ -> ())
          body
      | _ -> ())
    tu.Mc_ast.Tree.tu_decls;
  match !inner with
  | None -> Alcotest.fail "inner unroll with transformed AST not found"
  | Some d -> (
    match Mc_ast.Dump.transformed_stmt d with
    | None -> Alcotest.fail "no transformed dump"
    | Some dump ->
      check_lines_in_order ~what:"Fig 7" dump
        [
          "ForStmt";
          ".unrolled.iv.i";
          "AttributedStmt";
          "LoopHintAttr Implicit loop UnrollCount Numeric";
          "IntegerLiteral 'int' 2";
          "ForStmt";
          ".unroll_inner.iv.i";
        ])

let fig9_source =
  "void body(int i);\n\
   int main(void) {\n\
   #pragma omp unroll partial(2)\n\
   for (int i = 7; i < 17; i += 3)\n\
   body(i);\n\
   return 0; }"

let test_fig9_astdump () =
  let options = { Driver.default_options with Driver.use_irbuilder = true } in
  let dump = Driver.ast_dump ~options fig9_source in
  check_lines_in_order ~what:"Fig 9" dump
    [
      "OMPUnrollDirective";
      "OMPPartialClause";
      "OMPCanonicalLoop";
      "ForStmt";
      "CallExpr 'void'";
      "CapturedStmt"; (* distance function *)
      "CapturedDecl nothrow";
      "CapturedStmt"; (* loop value function *)
      "CapturedDecl nothrow";
      "DeclRefExpr 'int' lvalue Var 'i' 'int'";
    ]

let test_fig10_ir_skeleton () =
  (* Raw CodeGen output (no cleanup passes, which would merge the skeleton
     blocks away). *)
  let options = { Driver.default_options with Driver.use_irbuilder = true } in
  let diag, tu =
    Driver.frontend ~options
      ("void body(int i);\nint main(void) {\n#pragma omp for\n\
        for (int i = 0; i < 128; i += 1) body(i);\nreturn 0; }")
  in
  Alcotest.(check bool) "frontend ok" false (Mc_diag.Diagnostics.has_errors diag);
  match
    Some
      (Mc_codegen.Codegen.emit_translation_unit
         ~mode:Mc_codegen.Codegen.Irbuilder tu)
  with
  | None -> Alcotest.fail "no IR"
  | Some m ->
    let text = Mc_ir.Printer.module_to_string m in
    List.iter
      (fun block ->
        check_contains ~what:"Fig 10 skeleton block" text (block ^ ":"))
      [
        "omp_loop.preheader"; "omp_loop.header"; "omp_loop.cond"; "omp_loop.body";
        "omp_loop.inc"; "omp_loop.exit"; "omp_loop.after";
      ];
    check_contains ~what:"iv phi" text "phi i32 [ 0, %omp_loop.preheader ]";
    check_contains ~what:"trip cmp" text "icmp ult";
    check_contains ~what:"worksharing init" text "__kmpc_for_static_init";
    check_contains ~what:"fini" text "__kmpc_for_static_fini";
    check_contains ~what:"barrier" text "__kmpc_barrier"

(* Fig 8: the range-for de-sugaring stages recorded on the AST node. *)
let test_fig8_rangefor_desugar () =
  let _, tu =
    Driver.frontend
      "void recordf(double x);\nint main(void) {\n\
       double a[4];\nfor (int i = 0; i < 4; i += 1) a[i] = i;\n\
       for (double &v : a) recordf(v);\nreturn 0; }"
  in
  let dump = Mc_ast.Dump.translation_unit tu in
  check_lines_in_order ~what:"Fig 8 helpers" dump
    [ "CXXForRangeStmt"; "__range"; "__begin"; "__end" ]

(* OpenMP 6.0 preview node names in the dump (extension goldens). *)
let test_omp60_dumps () =
  let dump =
    Driver.ast_dump
      "void record(long x);\nint main(void) {\n\
       #pragma omp interchange permutation(2, 1)\n\
       for (int i = 0; i < 2; i += 1)\nfor (int j = 0; j < 2; j += 1) record(i);\n\
       #pragma omp reverse\nfor (int i = 0; i < 2; i += 1) record(i);\n\
       #pragma omp fuse\n{\nfor (int i = 0; i < 2; i += 1) record(i);\n\
       for (int j = 0; j < 2; j += 1) record(j);\n}\nreturn 0; }"
  in
  check_lines_in_order ~what:"omp 6.0 nodes" dump
    [
      "OMPInterchangeDirective";
      "OMPPermutationClause";
      "value: Int 2";
      "OMPReverseDirective";
      "OMPFuseDirective";
      "CompoundStmt";
    ]

let test_switch_dump_and_unparse () =
  let src =
    "void record(long x);\nint main(void) {\n\
     switch (3) { case 1: record(1); break; default: record(0); }\nreturn 0; }"
  in
  let dump = Driver.ast_dump src in
  check_lines_in_order ~what:"switch nodes" dump
    [ "SwitchStmt"; "CaseStmt"; "BreakStmt"; "DefaultStmt" ];
  let _, tu = Driver.frontend src in
  let printed = Mc_ast.Unparse.translation_unit_to_string tu in
  check_contains ~what:"unparse" printed "switch (3)";
  check_contains ~what:"case" printed "case 1:";
  check_contains ~what:"default" printed "default:"

(* ---- direct paper statements -------------------------------------------- *)

(* §1.1: the intro example's pragma form is "semantically equivalent" to the
   manually unrolled version with the guarded second body. *)
let test_intro_equivalence () =
  let pragma_version =
    "void record(long x);\nvoid body(int i) { record(i); }\n\
     int main(void) {\nint N = 11;\n\
     #pragma omp parallel for\n#pragma omp unroll partial(2)\n\
     for (int i = 0; i < N; i += 1)\nbody(i);\nreturn 0; }"
  in
  let manual_version =
    "void record(long x);\nvoid body(int i) { record(i); }\n\
     int main(void) {\nint N = 11;\n\
     #pragma omp parallel for\n\
     for (int i = 0; i < N; i += 2) {\nbody(i);\nif (i + 1 < N) body(i + 1);\n}\n\
     return 0; }"
  in
  List.iter
    (fun threads ->
      let a = trace_of ~num_threads:threads pragma_version in
      let b = trace_of ~num_threads:threads manual_version in
      (* The unrolled loop has ceil(N/2) logical iterations in both forms, so
         worksharing splits identically and the traces agree exactly. *)
      Alcotest.(check bool)
        (Printf.sprintf "equivalent at %d threads" threads)
        true
        (Mc_interp.Interp.trace_equal a b))
    [ 1; 2; 4 ]

(* Listing 1: the remainder-loop formulation equals the single-loop form. *)
let test_listing1_equivalence () =
  let plain =
    "void record(long x);\nvoid body(int i) { record(i); }\n\
     int main(void) {\nint N = 13;\n\
     #pragma omp unroll partial(4)\n\
     for (int i = 0; i < N; i += 1) body(i);\nreturn 0; }"
  in
  let listing1 =
    "void record(long x);\nvoid body(int i) { record(i); }\n\
     int main(void) {\nint N = 13;\nint i = 0;\n\
     for (; i + 3 < N; i += 4) {\n\
     body(i);\nbody(i + 1);\nbody(i + 2);\nbody(i + 3);\n}\n\
     for (; i < N; i += 1)\nbody(i);\nreturn 0; }"
  in
  let a = trace_of plain and b = trace_of listing1 in
  Alcotest.(check bool) "Listing 1 preserves semantics" true
    (Mc_interp.Interp.trace_equal a b)

(* §1.1: "transformations are applied in reverse order as they appear in
   the source" — so swapping two transformations changes the iteration
   order (each stays self-consistent across representations, which the
   differential suite already guarantees). *)
let test_application_order_matters () =
  let reverse_of_tile =
    "void record(long x);\nint main(void) {\n\
     #pragma omp reverse\n#pragma omp tile sizes(3)\n\
     for (int i = 0; i < 8; i += 1) record(i);\nreturn 0; }"
  in
  let tile_of_reverse =
    "void record(long x);\nint main(void) {\n\
     #pragma omp tile sizes(3)\n#pragma omp reverse\n\
     for (int i = 0; i < 8; i += 1) record(i);\nreturn 0; }"
  in
  let a = trace_of reverse_of_tile and b = trace_of tile_of_reverse in
  Alcotest.(check bool) "different orders" false
    (Mc_interp.Interp.trace_equal a b);
  (* Both are permutations of 0..7. *)
  let sorted t =
    List.sort compare
      (List.filter_map
         (function Mc_interp.Interp.T_int v -> Some v | _ -> None)
         t)
  in
  Alcotest.(check (list int64)) "same iteration set"
    (List.init 8 Int64.of_int) (sorted a);
  Alcotest.(check (list int64)) "same iteration set (b)"
    (List.init 8 Int64.of_int) (sorted b)

let suite =
  [
    tc "paper 1.1: intro example equivalence" test_intro_equivalence;
    tc "paper Listing 1: remainder-form equivalence" test_listing1_equivalence;
    tc "paper 1.1: reverse application order" test_application_order_matters;
    tc "OpenMP 6.0 node names" test_omp60_dumps;
    tc "switch dump and unparse" test_switch_dump_and_unparse;
    tc "Fig 2: parallel for AST dump" test_fig2_astdump;
    tc "Fig 6: composed unroll AST dump" test_fig6_astdump;
    tc "Fig 7: transformed shadow AST" test_fig7_transformed;
    tc "Fig 9: OMPCanonicalLoop AST dump" test_fig9_astdump;
    tc "Fig 10: IR loop skeleton" test_fig10_ir_skeleton;
    tc "Fig 8: range-for helper variables" test_fig8_rangefor_desugar;
  ]
