(* Parser tests: precedence, declarators, statement grammar, pragma
   parsing, and error recovery. *)

open Helpers
open Mc_ast.Tree
module Driver = Mc_core.Driver
module Visit = Mc_ast.Visit
module Unparse = Mc_ast.Unparse

let frontend_ok source =
  let diag, tu = Driver.frontend source in
  if Mc_diag.Diagnostics.has_errors diag then
    Alcotest.failf "parse failed:\n%s" (Mc_diag.Diagnostics.render_all diag);
  tu

(* Parse "long x = <expr>;" and render the initialiser back with explicit
   minimal parentheses — a precedence oracle. *)
let reparse expr_src =
  let tu =
    frontend_ok
      ("int v(void) { return 1; }\nint main(void) { int p = 1; int q = 2; \
        int r = 3; long x = " ^ expr_src ^ "; return (int)x; }")
  in
  let result = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; fn_name = "main"; _ } ->
        Visit.iter ~shadow:false
          ~on_var:(fun var ->
            if var.v_name = "x" then
              result := Option.map Unparse.expr_to_string var.v_init)
          body
      | _ -> ())
    tu.tu_decls;
  Option.get !result

let test_precedence () =
  let check src expected =
    Alcotest.(check string) src expected (reparse src)
  in
  (* Multiplication binds tighter than addition... *)
  check "p + q * r" "p + q * r";
  check "(p + q) * r" "(p + q) * r";
  (* ... shifts looser than arithmetic ... *)
  check "p << q + r" "p << q + r";
  check "(p << q) + r" "(p << q) + r";
  (* ... comparisons, bitwise, logical laddering ... *)
  check "p & q | r" "p & q | r"; (* & binds tighter than | *)
  check "p | q & r" "p | q & r";
  check "p && q || r" "p && q || r";
  check "p || q && r" "p || q && r";
  check "p == q < r" "p == q < r";
  (* unary and casts *)
  check "-p * q" "-p * q";
  check "-(p * q)" "-(p * q)";
  check "~p + !q" "~p + !q";
  (* conditional is right-associative and lower than || *)
  check "p ? q : r ? p : q" "p ? q : r ? p : q";
  check "p || q ? r : p" "p || q ? r : p";
  (* assignment in initialiser context via comma *)
  check "(p = q, p + 1)" "(p = q, p + 1)"

let test_associativity_values () =
  (* Semantics, not just shape: left-assoc subtraction and division. *)
  let t =
    trace_of
      "void record(long x);\nint main(void) {\n\
       record(100 - 10 - 5);\nrecord(100 / 5 / 2);\nrecord(2 - 3 + 4);\n\
       record(1 << 2 << 1);\nreturn 0; }"
  in
  Alcotest.(check string) "assoc" "85;10;3;8" (trace_to_string t)

let test_declarators () =
  let tu =
    frontend_ok
      "int main(void) {\n\
       int a, b = 2, *p, **pp;\n\
       double m[3][4];\n\
       unsigned long big;\n\
       const int c = 5;\n\
       int *q = &b;\n\
       a = *q + c; p = &a; pp = &p;\n\
       return a + **pp + (int)big + (int)m[0][0];\n}"
  in
  let types = Hashtbl.create 8 in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_var:(fun v -> Hashtbl.replace types v.v_name v.v_ty)
          body
      | _ -> ())
    tu.tu_decls;
  let ty name = Mc_ast.Ctype.to_string (Hashtbl.find types name) in
  Alcotest.(check string) "int" "int" (ty "a");
  Alcotest.(check string) "ptr" "int *" (ty "p");
  Alcotest.(check string) "ptr ptr" "int * *" (ty "pp");
  Alcotest.(check string) "matrix" "double[4][3]" (ty "m");
  Alcotest.(check string) "unsigned long" "unsigned long" (ty "big")

let test_function_forms () =
  (* Prototypes, definitions, array parameters decaying, variadic decl. *)
  let tu =
    frontend_ok
      "int add(int, int);\n\
       int add(int a, int b) { return a + b; }\n\
       long sum(int xs[], int n) { long s = 0; for (int i = 0; i < n; i += 1) \
       s += xs[i]; return s; }\n\
       void printf_like(int fmt, ...);\n\
       int main(void) { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; \
       return add(1, 2) + (int)sum(a, 3); }"
  in
  let fns =
    List.filter_map
      (function
        | Tu_fn f when not f.fn_builtin -> Some f.fn_name
        | _ -> None)
      tu.tu_decls
  in
  Alcotest.(check (list string)) "functions"
    [ "add"; "sum"; "printf_like"; "main" ]
    fns;
  List.iter
    (function
      | Tu_fn f when f.fn_name = "sum" ->
        Alcotest.(check string) "array param decays" "int *"
          (Mc_ast.Ctype.to_string (List.nth f.fn_ty.ft_params 0))
      | Tu_fn f when f.fn_name = "printf_like" ->
        Alcotest.(check bool) "variadic" true f.fn_ty.ft_variadic
      | _ -> ())
    tu.tu_decls

let test_statement_grammar () =
  (* Dangling else binds to the nearest if. *)
  let t =
    trace_of
      "void record(long x);\nint main(void) {\n\
       for (int v = 0; v < 4; v += 1)\n\
       if (v > 0) if (v > 2) record(100 + v); else record(200 + v);\n\
       return 0; }"
  in
  Alcotest.(check string) "dangling else" "201;202;103" (trace_to_string t);
  (* Empty statements, nested blocks, comma in for-increment. *)
  let t2 =
    trace_of
      "void record(long x);\nint main(void) {\n\
       ;;\n{ { record(1); } ; }\n\
       int j = 0;\n\
       for (int i = 0; i < 6; i += 1, j += 2) ;\n\
       record(j);\nreturn 0; }"
  in
  Alcotest.(check string) "misc" "1;12" (trace_to_string t2)

let test_sizeof_and_casts () =
  let t =
    trace_of
      "void record(long x);\nint main(void) {\n\
       record(sizeof(int)); record(sizeof(double)); record(sizeof(long *));\n\
       record((long)(char)300);\n\
       record((long)(unsigned char)300);\n\
       record((int)3.99); record((int)-3.99);\n\
       double d = (double)7 / 2;\n\
       record((long)(d * 10.0));\nreturn 0; }"
  in
  Alcotest.(check string) "sizeof/casts" "4;8;8;44;44;3;-3;35" (trace_to_string t)

let test_parse_errors_recover () =
  (* Errors are reported but parsing continues to find later errors. *)
  let diag, _ =
    Driver.frontend
      "int main(void) {\nint x = ;\nint y = 2\nreturn § 0;\n}"
  in
  Alcotest.(check bool) "has errors" true (Mc_diag.Diagnostics.has_errors diag);
  if Mc_diag.Diagnostics.error_count diag < 2 then
    Alcotest.fail "expected recovery to surface multiple errors"

let test_pragma_positions () =
  expect_error ~substring:"unexpected pragma at file scope"
    "#pragma omp parallel\nint main(void) { return 0; }";
  (* A pragma may directly follow another as associated statement; that is
     the composability the paper's §1.1 stresses. *)
  let diag, _ =
    Driver.frontend
      "void record(long x);\nint main(void) {\n\
       #pragma omp parallel\n#pragma omp parallel\nrecord(1);\nreturn 0; }"
  in
  Alcotest.(check bool) "nested pragma stmt" false
    (Mc_diag.Diagnostics.has_errors diag)

let test_clang_loop_pragma () =
  let tu =
    frontend_ok
      "void record(long x);\nint main(void) {\n\
       #pragma clang loop unroll_count(4)\n\
       for (int i = 0; i < 8; i += 1) record(i);\n\
       #pragma clang loop unroll(full)\n\
       for (int i = 0; i < 4; i += 1) record(10 + i);\n\
       #pragma clang loop unroll(disable)\n\
       for (int i = 0; i < 4; i += 1) record(20 + i);\n\
       return 0; }"
  in
  let hints = ref [] in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Attributed (attrs, _) ->
              List.iter (fun (Loop_hint h) -> hints := h.lh_option :: !hints) attrs
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  Alcotest.(check int) "three hints" 3 (List.length !hints)

let test_global_declarations_rejected_in_codegen () =
  (* Globals parse and sema-check, but codegen reports them unsupported. *)
  let result = Driver.compile "int g = 5;\nint main(void) { return g; }" in
  match result.Driver.codegen_error with
  | Some msg -> check_contains ~what:"global" msg "global"
  | None -> Alcotest.fail "expected a codegen unsupported error"

let suite =
  [
    tc "operator precedence (unparse oracle)" test_precedence;
    tc "associativity semantics" test_associativity_values;
    tc "declarators" test_declarators;
    tc "function declarations and definitions" test_function_forms;
    tc "statement grammar" test_statement_grammar;
    tc "sizeof and casts" test_sizeof_and_casts;
    tc "error recovery" test_parse_errors_recover;
    tc "pragma placement" test_pragma_positions;
    tc "#pragma clang loop" test_clang_loop_pragma;
    tc "globals rejected in codegen" test_global_declarations_rejected_in_codegen;
  ]
