(* mccd — the mcc compile server.

   Runs Mc_core.Server in the foreground on a Unix-domain socket: a warm
   pool of worker domains sharing one stage cache (optionally persisted
   with --cache-dir), so `mcc --daemon` clients get warm-process compile
   times from cold processes.  SIGTERM/SIGINT request a graceful drain:
   stop accepting, finish every queued request, remove the socket, exit. *)

module Server = Mc_core.Server
module Stats = Mc_support.Stats

let main socket pool queue max_requests idle_timeout request_timeout
    retry_after cache_dir max_cache_mb print_stats quiet =
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (* Parse MCC_FAULTS up front so malformed specs warn at startup, not
     on the first request. *)
  Mc_support.Fault.arm_from_env ();
  let config =
    {
      Server.socket_path =
        (match socket with
        | Some p -> p
        | None -> Server.default_config.Server.socket_path);
      pool_size = max 1 pool;
      queue_capacity = max 1 queue;
      max_requests;
      idle_timeout;
      request_timeout;
      shed_retry_after =
        Option.value retry_after
          ~default:Server.default_config.Server.shed_retry_after;
      cache_dir;
      max_cache_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_cache_mb;
      log = (if quiet then None else Some (fun m -> Printf.eprintf "mccd: %s\n%!" m));
    }
  in
  match Server.run ~stop config with
  | Error msg ->
    Printf.eprintf "mccd: %s\n%!" msg;
    exit 1
  | Ok snapshot ->
    if print_stats then
      List.iter
        (fun (key, v) -> if v <> 0 then Printf.eprintf "%8d %s\n" v key)
        snapshot;
    exit 0

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (default \\$MCCD_SOCKET or \
           mccd-<uid>.sock in the temp directory)")

let pool_arg =
  Arg.(
    value & opt int 2
    & info [ "pool" ] ~docv:"N" ~doc:"Worker domains serving requests")

let queue_arg =
  Arg.(
    value & opt int 16
    & info [ "queue"; "max-queue" ] ~docv:"N"
        ~doc:
          "Pending connections held before the accept loop sheds new \
           ones with a busy reply ($(b,--max-queue) is a synonym)")

let max_requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-requests" ] ~docv:"N"
        ~doc:"Exit (gracefully) after serving $(docv) connections")

let idle_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Exit (gracefully) after $(docv) seconds without a connection")

let request_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-request wall-clock deadline (worker pickup to reply); a \
           request that exceeds it is answered with a structured timeout \
           rejection telling the client to compile locally")

let retry_after_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "retry-after" ] ~docv:"SECONDS"
        ~doc:
          "Backoff hint carried in busy (load-shedding) replies \
           (default 0.05)")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the shared stage cache in $(docv), so the daemon starts \
           disk-warm and its artifacts outlive it")

let max_cache_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cache-mb" ] ~docv:"MB"
        ~doc:"On-disk cache byte cap in mebibytes (LRU eviction; default 512)")

let print_stats_arg =
  Arg.(
    value & flag
    & info [ "print-stats" ]
        ~doc:"Print the lifetime counter snapshot on exit")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress lines")

let cmd =
  let doc = "compile server for mcc --daemon (warm shared stage cache)" in
  Cmd.v
    (Cmd.info "mccd" ~doc)
    Term.(
      const main $ socket_arg $ pool_arg $ queue_arg $ max_requests_arg
      $ idle_timeout_arg $ request_timeout_arg $ retry_after_arg
      $ cache_dir_arg $ max_cache_mb_arg $ print_stats_arg $ quiet_arg)

(* Same single-dash long-flag convenience as mcc. *)
let long_flags =
  [
    "socket"; "pool"; "queue"; "max-queue"; "max-requests"; "idle-timeout";
    "request-timeout"; "retry-after"; "cache-dir"; "max-cache-mb";
    "print-stats"; "quiet";
  ]

let normalize_argv argv =
  Array.map
    (fun arg ->
      if String.length arg > 2 && arg.[0] = '-' && arg.[1] <> '-' then begin
        let body = String.sub arg 1 (String.length arg - 1) in
        let name =
          match String.index_opt body '=' with
          | Some i -> String.sub body 0 i
          | None -> body
        in
        if List.mem name long_flags then "-" ^ arg else arg
      end
      else arg)
    argv

let () = exit (Cmd.eval ~argv:(normalize_argv Sys.argv) cmd)
