(* mcc — the mini-Clang driver CLI.

   Mirrors the Clang actions the paper mentions: [-ast-dump] (with an extra
   [-ast-dump-shadow] to reveal the hidden shadow AST of §1.2), [-emit-ir],
   [-fopenmp-enable-irbuilder] to switch the OpenMP lowering between the
   shadow-AST path (§2) and the OpenMPIRBuilder path (§3), and by default
   compiling and executing the program on the IR interpreter. *)

module Driver = Mc_core.Driver
module Diag = Mc_diag.Diagnostics
module Stats = Mc_support.Stats

let read_source path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

type action =
  | Run
  | Ast_dump
  | Ast_dump_shadow
  | Ast_print
  | Print_transformed
  | Emit_ir
  | Syntax_only

let main path action irbuilder opt_level no_fold num_threads stage_timings
    time_report print_stats =
  (* Registered before the action so the reports also appear on the exit-1
     error paths, like Clang's. *)
  if time_report then
    at_exit (fun () -> prerr_string (Stats.render_time_report ()));
  if print_stats then at_exit (fun () -> prerr_string (Stats.render_stats ()));
  let source = read_source path in
  let options =
    {
      Driver.default_options with
      Driver.use_irbuilder = irbuilder;
      optimize = opt_level > 0;
      fold = not no_fold;
    }
  in
  let fail_diags diag =
    prerr_string (Diag.render_all diag);
    exit 1
  in
  match action with
  | Ast_dump | Ast_dump_shadow ->
    let diag, tu = Driver.frontend ~options source in
    prerr_string (Diag.render_all diag);
    print_string
      (Mc_ast.Dump.translation_unit ~shadow:(action = Ast_dump_shadow) tu);
    if Diag.has_errors diag then exit 1
  | Ast_print ->
    let diag, tu = Driver.frontend ~options source in
    prerr_string (Diag.render_all diag);
    print_string (Mc_ast.Unparse.translation_unit_to_string tu);
    if Diag.has_errors diag then exit 1
  | Print_transformed ->
    (* Source-to-source view of every transformation's generated loop (the
       shadow AST of paper section 2, unparsed back to C). *)
    let diag, tu = Driver.frontend ~options source in
    prerr_string (Diag.render_all diag);
    List.iter
      (function
        | Mc_ast.Tree.Tu_fn { fn_body = Some body; fn_name; _ } ->
          Mc_ast.Visit.iter ~shadow:false
            ~on_stmt:(fun s ->
              match s.Mc_ast.Tree.s_kind with
              | Mc_ast.Tree.Omp_directive d
                when d.Mc_ast.Tree.dir_transformed <> None ->
                Printf.printf "// in %s: getTransformedStmt() of '#pragma omp %s':
"
                  fn_name
                  (Mc_ast.Unparse.directive_name d.Mc_ast.Tree.dir_kind);
                (match d.Mc_ast.Tree.dir_preinits with
                | Some pre ->
                  print_string (Mc_ast.Unparse.stmt_to_string ~indent:0 pre)
                | None -> ());
                (match d.Mc_ast.Tree.dir_transformed with
                | Some tr ->
                  print_string (Mc_ast.Unparse.stmt_to_string ~indent:0 tr)
                | None -> ())
              | _ -> ())
            body
        | _ -> ())
      tu.Mc_ast.Tree.tu_decls;
    if Diag.has_errors diag then exit 1
  | Syntax_only ->
    let diag, _ = Driver.frontend ~options source in
    prerr_string (Diag.render_all diag);
    if Diag.has_errors diag then exit 1
  | Emit_ir -> (
    let result = Driver.compile ~options source in
    prerr_string (Diag.render_all result.Driver.diag);
    match result.Driver.ir with
    | Some m -> print_string (Mc_ir.Printer.module_to_string m)
    | None ->
      (match result.Driver.codegen_error with
      | Some e -> Printf.eprintf "codegen error: %s\n" e
      | None -> ());
      exit 1)
  | Run -> (
    let result = Driver.compile ~options source in
    if Diag.has_errors result.Driver.diag then fail_diags result.Driver.diag;
    prerr_string (Diag.render_all result.Driver.diag);
    if stage_timings then begin
      let t = result.Driver.timings in
      Printf.eprintf
        "stage timings: lex %.6fs, preprocess %.6fs, parse+sema %.6fs, codegen %.6fs, passes %.6fs\n"
        t.Driver.t_lex t.Driver.t_preprocess t.Driver.t_parse_sema
        t.Driver.t_codegen t.Driver.t_passes
    end;
    let config =
      { Mc_interp.Interp.default_config with Mc_interp.Interp.num_threads }
    in
    match Driver.run ~config result with
    | Ok outcome ->
      print_string outcome.Mc_interp.Interp.output;
      List.iter
        (fun entry ->
          match entry with
          | Mc_interp.Interp.T_int v -> Printf.printf "record: %Ld\n" v
          | Mc_interp.Interp.T_float f -> Printf.printf "record: %g\n" f)
        outcome.Mc_interp.Interp.trace;
      Printf.eprintf "[exit %s after %d steps]\n"
        (match outcome.Mc_interp.Interp.return_value with
        | Some v -> Int64.to_string v
        | None -> "void")
        outcome.Mc_interp.Interp.steps
    | Error msg ->
      prerr_endline msg;
      exit 1)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"C source file ('-' for stdin)")

let action_arg =
  let flags =
    [
      (Ast_dump, Arg.info [ "ast-dump" ] ~doc:"Print the (syntactic) AST");
      ( Ast_dump_shadow,
        Arg.info [ "ast-dump-shadow" ]
          ~doc:"Print the AST including hidden shadow-AST children" );
      (Ast_print, Arg.info [ "ast-print" ] ~doc:"Unparse the AST back to C");
      ( Print_transformed,
        Arg.info [ "print-transformed" ]
          ~doc:"Unparse every transformation's generated (shadow) loop" );
      (Emit_ir, Arg.info [ "emit-ir" ] ~doc:"Print the generated IR");
      (Syntax_only, Arg.info [ "syntax-only" ] ~doc:"Stop after semantic analysis");
    ]
  in
  Arg.(value & vflag Run flags)

let irbuilder_arg =
  Arg.(
    value & flag
    & info [ "fopenmp-enable-irbuilder" ]
        ~doc:"Use the OpenMPIRBuilder lowering path (paper §3)")

let opt_arg =
  Arg.(value & opt int 1 & info [ "O" ] ~docv:"LEVEL" ~doc:"Optimization level (0 or 1)")

let no_fold_arg =
  Arg.(
    value & flag
    & info [ "no-builder-folding" ]
        ~doc:"Disable the IRBuilder's on-the-fly simplification (ablation)")

let threads_arg =
  Arg.(value & opt int 4 & info [ "num-threads" ] ~doc:"Simulated OpenMP team size")

let timings_arg =
  Arg.(value & flag & info [ "stage-timings" ] ~doc:"Report per-layer times (Fig. 1)")

let time_report_arg =
  Arg.(
    value & flag
    & info [ "ftime-report" ]
        ~doc:"Print a per-stage wall-clock time report (Clang's -ftime-report)")

let print_stats_arg =
  Arg.(
    value & flag
    & info [ "print-stats" ]
        ~doc:"Print the pipeline's statistic counters (Clang's -print-stats)")

let cmd =
  let doc = "mini-Clang with OpenMP loop transformations (paper reproduction)" in
  Cmd.v
    (Cmd.info "mcc" ~doc)
    Term.(
      const main $ path_arg $ action_arg $ irbuilder_arg $ opt_arg $ no_fold_arg
      $ threads_arg $ timings_arg $ time_report_arg $ print_stats_arg)

(* Clang spells long options with a single dash (-ftime-report, -emit-ir);
   cmdliner only parses them with two.  Accept the Clang spelling by
   promoting known single-dash long flags to their double-dash form. *)
let long_flags =
  [
    "ast-dump"; "ast-dump-shadow"; "ast-print"; "print-transformed";
    "emit-ir"; "syntax-only"; "fopenmp-enable-irbuilder";
    "no-builder-folding"; "num-threads"; "stage-timings"; "ftime-report";
    "print-stats";
  ]

let normalize_argv argv =
  Array.map
    (fun arg ->
      if String.length arg > 2 && arg.[0] = '-' && arg.[1] <> '-' then begin
        let body = String.sub arg 1 (String.length arg - 1) in
        let name =
          match String.index_opt body '=' with
          | Some i -> String.sub body 0 i
          | None -> body
        in
        if List.mem name long_flags then "-" ^ arg else arg
      end
      else arg)
    argv

let () = exit (Cmd.eval ~argv:(normalize_argv Sys.argv) cmd)
