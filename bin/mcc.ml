(* mcc — the mini-Clang driver CLI.

   Mirrors the Clang actions the paper mentions: [-ast-dump] (with an extra
   [-ast-dump-shadow] to reveal the hidden shadow AST of §1.2), [-emit-ir],
   [-fopenmp-enable-irbuilder] to switch the OpenMP lowering between the
   shadow-AST path (§2) and the OpenMPIRBuilder path (§3), and by default
   compiling and executing the program on the IR interpreter.

   The CLI is a thin shell over the reentrant API: argv becomes an
   [Invocation.t], one [Instance.t] owns the stats registry the reports
   render from, and multiple FILE arguments compile as a [Batch] over
   [-j N] domains (sharing a content-addressed compile cache under
   [--cache]). *)

module Driver = Mc_core.Driver
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Client = Mc_core.Client
module Protocol = Mc_core.Protocol
module Diag = Mc_diag.Diagnostics
module Stats = Mc_support.Stats
module Crash_recovery = Mc_support.Crash_recovery

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("mcc: " ^ msg); exit 1) fmt

(* A contained internal compiler error: per-unit report in the style of
   Clang's "PLEASE submit a bug report" banner, naming the pipeline phase,
   the source watermark and the reproducer bundle (when one was written). *)
let report_ice ~name (f : Instance.failure) =
  let ice = f.Instance.f_ice in
  Printf.eprintf "mcc: internal compiler error compiling %s: %s (phase: %s%s)\n"
    name ice.Crash_recovery.ice_exn ice.Crash_recovery.ice_phase
    (match ice.Crash_recovery.ice_location with
    | Some l -> ", near " ^ l
    | None -> "");
  match f.Instance.f_reproducer with
  | Some dir ->
    Printf.eprintf "mcc: note: reproducer bundle written to %s (see repro.sh)\n"
      dir
  | None -> ()

(* Frontend-only actions run one file at a time; each file gets its own
   registry (a compilation resets the registry it is scoped to), merged
   into the process instance so the exit reports cover every file. *)
let frontend_unit inst (name, source) =
  let sub = Instance.create ?cache:(Instance.cache inst) (Instance.invocation inst) in
  let r = Instance.frontend_safe sub ~name source in
  Stats.Registry.merge ~into:(Instance.registry inst) (Instance.registry sub);
  r

let multi_header inv name =
  if List.length inv.Invocation.inputs > 1 then
    Printf.printf "// === %s ===\n" name

let run_frontend_action inst units =
  let inv = Instance.invocation inst in
  let failed = ref false in
  List.iter
    (fun (name, source) ->
      match frontend_unit inst (name, source) with
      | Error f ->
        report_ice ~name f;
        failed := true
      | Ok (diag, tu) -> (
      prerr_string (Diag.render_all diag);
      if Diag.has_errors diag then failed := true;
      match inv.Invocation.action with
      | Invocation.Syntax_only -> ()
      | Invocation.Ast_dump | Invocation.Ast_dump_shadow ->
        multi_header inv name;
        print_string
          (Mc_ast.Dump.translation_unit
             ~shadow:(inv.Invocation.action = Invocation.Ast_dump_shadow)
             tu)
      | Invocation.Ast_print ->
        multi_header inv name;
        print_string (Mc_ast.Unparse.translation_unit_to_string tu)
      | Invocation.Print_transformed ->
        multi_header inv name;
        (* Source-to-source view of every transformation's generated loop
           (the shadow AST of paper section 2, unparsed back to C). *)
        List.iter
          (function
            | Mc_ast.Tree.Tu_fn { fn_body = Some body; fn_name; _ } ->
              Mc_ast.Visit.iter ~shadow:false
                ~on_stmt:(fun s ->
                  match s.Mc_ast.Tree.s_kind with
                  | Mc_ast.Tree.Omp_directive d
                    when d.Mc_ast.Tree.dir_transformed <> None ->
                    Printf.printf
                      "// in %s: getTransformedStmt() of '#pragma omp %s':\n"
                      fn_name
                      (Mc_ast.Unparse.directive_name d.Mc_ast.Tree.dir_kind);
                    (match d.Mc_ast.Tree.dir_preinits with
                    | Some pre ->
                      print_string (Mc_ast.Unparse.stmt_to_string ~indent:0 pre)
                    | None -> ());
                    (match d.Mc_ast.Tree.dir_transformed with
                    | Some tr ->
                      print_string (Mc_ast.Unparse.stmt_to_string ~indent:0 tr)
                    | None -> ())
                  | _ -> ())
                body
            | _ -> ())
          tu.Mc_ast.Tree.tu_decls
      | Invocation.Run | Invocation.Emit_ir | Invocation.Emit_transformed
      | Invocation.Analyze ->
        assert false))
    units;
  if !failed then exit 1

let run_compile_action inst units =
  let inv = Instance.invocation inst in
  let batch = Batch.compile_into inst units in
  let failed = ref false in
  (* Per-file diagnostics, in input order whatever the domain schedule.
     A contained ICE fails that unit alone: its siblings keep going. *)
  List.iter
    (fun u ->
      match u.Batch.u_result with
      | Error f ->
        report_ice ~name:u.Batch.u_name f;
        failed := true
      | Ok r ->
        prerr_string (Diag.render_all r.Driver.diag);
        if Diag.has_errors r.Driver.diag then failed := true)
    batch.Batch.units;
  if List.length batch.Batch.units > 1 then
    Printf.eprintf
      "[mcc: %d unit(s): %d error(s), %d codegen error(s), %d ICE(s), %d \
       cache hit(s), %d domain(s), %.3fs]\n%!"
      (List.length batch.Batch.units)
      (Batch.errors batch) (Batch.codegen_errors batch) (Batch.ices batch)
      (Batch.hits batch) batch.Batch.jobs batch.Batch.wall;
  List.iter
    (fun u ->
      match u.Batch.u_result with
      | Error _ -> () (* already reported; siblings proceed *)
      | Ok r when Diag.has_errors r.Driver.diag -> ()
      | Ok r ->
      if inv.Invocation.stage_timings then begin
        let t = r.Driver.timings in
        Printf.eprintf
          "%s: stage timings: lex %.6fs, preprocess %.6fs, parse+sema %.6fs, \
           codegen %.6fs, passes %.6fs%s\n"
          u.Batch.u_name t.Driver.t_lex t.Driver.t_preprocess
          t.Driver.t_parse_sema t.Driver.t_codegen t.Driver.t_passes
          (if u.Batch.u_cache_hit then " (cache hit)" else "")
      end;
      (* One line per script step, greppable like the daemon traces. *)
      (match r.Driver.transformed with
      | Some (_, trace) ->
        List.iter
          (fun line ->
            Printf.eprintf "[mcc transfo: %s: %s]\n%!" u.Batch.u_name line)
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' trace))
      | None -> ());
      match inv.Invocation.action with
      | Invocation.Emit_ir -> (
        match r.Driver.ir with
        | Some m ->
          multi_header inv u.Batch.u_name;
          print_string (Mc_ir.Printer.module_to_string m)
        | None ->
          (match r.Driver.codegen_error with
          | Some e -> Printf.eprintf "codegen error: %s\n" e
          | None -> ());
          failed := true)
      | Invocation.Run -> (
        let config =
          {
            Mc_interp.Interp.default_config with
            Mc_interp.Interp.num_threads = inv.Invocation.num_threads;
          }
        in
        match Instance.run inst ~config r with
        | Ok outcome ->
          print_string outcome.Mc_interp.Interp.output;
          List.iter
            (fun entry ->
              match entry with
              | Mc_interp.Interp.T_int v -> Printf.printf "record: %Ld\n" v
              | Mc_interp.Interp.T_float f -> Printf.printf "record: %g\n" f)
            outcome.Mc_interp.Interp.trace;
          Printf.eprintf "[%s: exit %s after %d steps]\n" u.Batch.u_name
            (match outcome.Mc_interp.Interp.return_value with
            | Some v -> Int64.to_string v
            | None -> "void")
            outcome.Mc_interp.Interp.steps
        | Error msg ->
          prerr_endline msg;
          failed := true)
      | _ -> assert false)
    batch.Batch.units;
  (* --incremental: recompile the whole batch against the instance's
     stage cache and report, per unit, how much of the pipeline the warm
     pass actually reused.  Actions ran on the cold pass; the warm pass
     only demonstrates (and measures) stage reuse. *)
  if inv.Invocation.incremental then begin
    (* The report goes to stderr while program output went to stdout; a
       consumer reading both through one pipe (the CI grep) needs stdout
       drained first and each report line pushed out as it is written —
       otherwise a non-zero exit below can reorder or swallow the
       summary still sitting in the buffer. *)
    flush stdout;
    let warm = Batch.compile_into inst units in
    List.iter2
      (fun cold_u warm_u ->
        match warm_u.Batch.u_result with
        | Error f ->
          report_ice ~name:warm_u.Batch.u_name f;
          failed := true
        | Ok _ ->
          let speedup =
            if warm_u.Batch.u_wall > 0.0 then
              cold_u.Batch.u_wall /. warm_u.Batch.u_wall
            else infinity
          in
          (* On a partial AST stage the per-slice outcomes say exactly
             which functions were adopted from per-function artifacts
             and which were re-parsed.  The warm pass usually full-hits
             the unit artifacts the cold pass just stored, so when it
             has no per-slice story, fall back to the cold pass — that
             is the pass that demonstrated per-function reuse (e.g. a
             body edit against a --cache-dir warmed by the old file). *)
          let fns =
            match
              (warm_u.Batch.u_fn_trace, cold_u.Batch.u_fn_trace)
            with
            | [], [] -> ""
            | [], fns | fns, _ ->
              Printf.sprintf ", fns: %s"
                (Mc_core.Pipeline.render_fn_trace fns)
          in
          Printf.eprintf
            "[mcc --incremental: %s: cold %.6fs, warm %.6fs (%.1fx), %s%s]\n%!"
            warm_u.Batch.u_name cold_u.Batch.u_wall warm_u.Batch.u_wall speedup
            (Mc_core.Pipeline.render_trace warm_u.Batch.u_trace) fns)
      batch.Batch.units warm.Batch.units
  end;
  if !failed then exit 1

(* --daemon: ship the request to a running mccd and render its response
   with the same semantics (and exit codes) as the in-process path; the
   IR comes back marshalled so Run still executes on the local
   interpreter.  Returns [Error] when no usable daemon answered — the
   caller falls back to [run_compile_action]. *)
let client_policy inv =
  Client.policy_with ?timeout:inv.Invocation.daemon_timeout
    ?retries:inv.Invocation.daemon_retries ()

let run_daemon_action inst units =
  let inv = Instance.invocation inst in
  let socket_path =
    match inv.Invocation.daemon_socket with
    | Some p -> p
    | None -> Client.default_socket ()
  in
  match Client.compile ~policy:(client_policy inv) ~socket_path inv units with
  | Error msg -> Error msg
  | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
    Error ("daemon rejected the request: " ^ reason)
  | Ok
      {
        Client.response =
          ( Protocol.Resp_transformed _ | Protocol.Resp_analysis _
          | Protocol.Resp_pong _ );
        _;
      } ->
    Error "daemon sent an unexpected response kind to a compile request"
  | Ok { Client.response = Protocol.Resp_busy _; _ } ->
    (* Unreachable: the client absorbs busy replies or errors out. *)
    Error "daemon busy"
  | Ok
      {
        Client.response = Protocol.Resp_units { p_units; p_stats; p_wall };
        busy_retries;
      } ->
    (* Fold the server-side pipeline counters into the instance registry
       so -print-stats / -ftime-report stay transparent. *)
    Instance.in_registry inst (fun () -> Client.absorb_snapshot p_stats);
    let failed = ref false in
    List.iter
      (fun (u : Protocol.response_unit) ->
        match u.Protocol.r_outcome with
        | Protocol.R_ice { ice_phase; ice_exn; ice_location; ice_reproducer }
          ->
          Printf.eprintf
            "mcc: internal compiler error compiling %s: %s (phase: %s%s) \
             [contained by daemon]\n"
            u.Protocol.r_name ice_exn ice_phase
            (match ice_location with Some l -> ", near " ^ l | None -> "");
          (match ice_reproducer with
          | Some dir ->
            Printf.eprintf
              "mcc: note: reproducer bundle written server-side to %s\n" dir
          | None -> ());
          failed := true
        | Protocol.R_ok { ok_diag; ok_errors; _ } ->
          prerr_string ok_diag;
          if ok_errors then failed := true)
      p_units;
    (* One line per unit with the server's stage trace, then a summary —
       greppable by the CI daemon smoke job. *)
    List.iter
      (fun (u : Protocol.response_unit) ->
        Printf.eprintf "[mcc --daemon: %s: %s%s, server %.6fs]\n%!"
          u.Protocol.r_name
          (Mc_core.Pipeline.render_trace u.Protocol.r_trace)
          (if u.Protocol.r_cache_hit then " (full hit)" else "")
          u.Protocol.r_wall)
      p_units;
    Printf.eprintf "[mcc --daemon: %d unit(s) via %s, %d full hit(s), %s, \
                    server %.3fs]\n%!"
      (List.length p_units) socket_path
      (List.length
         (List.filter (fun u -> u.Protocol.r_cache_hit) p_units))
      (Client.render_outcome
         (if busy_retries = 0 then Client.Served
          else Client.Shed_then_served busy_retries))
      p_wall;
    List.iter
      (fun (u : Protocol.response_unit) ->
        match u.Protocol.r_outcome with
        | Protocol.R_ice _ -> ()
        | Protocol.R_ok { ok_errors = true; _ } -> ()
        | Protocol.R_ok { ok_ir; ok_codegen_error; _ } -> (
          match inv.Invocation.action with
          | Invocation.Emit_ir -> (
            match Client.ir_of_response_unit u with
            | Some m ->
              multi_header inv u.Protocol.r_name;
              print_string (Mc_ir.Printer.module_to_string m)
            | None ->
              (match ok_codegen_error with
              | Some e -> Printf.eprintf "codegen error: %s\n" e
              | None -> ());
              failed := true)
          | Invocation.Run -> (
            match Client.ir_of_response_unit u with
            | None ->
              (match ok_codegen_error with
              | Some e -> Printf.eprintf "codegen error: %s\n" e
              | None ->
                Printf.eprintf "mcc: daemon response for %s carried no IR\n"
                  u.Protocol.r_name);
              failed := true
            | Some m -> (
              let config =
                {
                  Mc_interp.Interp.default_config with
                  Mc_interp.Interp.num_threads = inv.Invocation.num_threads;
                }
              in
              ignore ok_ir;
              match
                Instance.in_registry inst (fun () ->
                    Mc_interp.Interp.run_main ~config m)
              with
              | outcome ->
                print_string outcome.Mc_interp.Interp.output;
                List.iter
                  (fun entry ->
                    match entry with
                    | Mc_interp.Interp.T_int v ->
                      Printf.printf "record: %Ld\n" v
                    | Mc_interp.Interp.T_float f ->
                      Printf.printf "record: %g\n" f)
                  outcome.Mc_interp.Interp.trace;
                Printf.eprintf "[%s: exit %s after %d steps]\n%!"
                  u.Protocol.r_name
                  (match outcome.Mc_interp.Interp.return_value with
                  | Some v -> Int64.to_string v
                  | None -> "void")
                  outcome.Mc_interp.Interp.steps
              | exception Mc_interp.Interp.Trap msg ->
                prerr_endline ("trap: " ^ msg);
                failed := true))
          | _ -> assert false))
      p_units;
    if !failed then exit 1;
    Ok ()

(* -emit-transformed: apply the transfo script and print the rewritten
   program — the source-to-source view of the scripted pipeline, without
   compiling the result.  In daemon mode this ships a [Req_transform]
   (the v2 request kind) so script authors iterate against the daemon's
   warm transfo cache; otherwise the pre-stage runs in-process. *)
let run_transform_action inst units =
  let inv = Instance.invocation inst in
  let options = Invocation.to_driver_options inv in
  let script =
    match options.Driver.transfo_script with
    | Some s -> s
    | None -> die "-emit-transformed requires --transfo-script FILE"
  in
  let options = { options with Driver.transfo_script = None } in
  let local name source =
    match
      Mc_core.Pipeline.transform ?cache:(Instance.cache inst) ~options ~name
        ~script source
    with
    | Ok (outcome, src, trace) ->
      Ok (src, trace, outcome = Mc_core.Pipeline.Cache_hit)
    | Error msg -> Error msg
  in
  let remote name source =
    let socket_path =
      match inv.Invocation.daemon_socket with
      | Some p -> p
      | None -> Client.default_socket ()
    in
    match
      Client.transform ~policy:(client_policy inv) ~socket_path inv ~name
        source
    with
    | Error msg -> Error (`Fallback msg)
    | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
      Error (`Fallback ("daemon rejected the request: " ^ reason))
    | Ok
        {
          Client.response =
            ( Protocol.Resp_units _ | Protocol.Resp_analysis _
            | Protocol.Resp_busy _ | Protocol.Resp_pong _ );
          _;
        } ->
      Error
        (`Fallback "daemon sent an unexpected response kind to a transform \
                    request")
    | Ok
        {
          Client.response = Protocol.Resp_transformed { p_result; p_stats; p_wall };
          _;
        } -> (
      Instance.in_registry inst (fun () -> Client.absorb_snapshot p_stats);
      match p_result with
      | Ok t ->
        Printf.eprintf "[mcc --daemon: transformed %s%s, server %.6fs]\n%!"
          name
          (if t.Protocol.x_cache_hit then " (hit)" else "")
          p_wall;
        Ok (t.Protocol.x_source, t.Protocol.x_trace, t.Protocol.x_cache_hit)
      | Error msg -> Error (`Script msg))
  in
  let failed = ref false in
  List.iter
    (fun (name, source) ->
      let result =
        if inv.Invocation.daemon then
          match remote name source with
          | Ok r -> Ok r
          | Error (`Script msg) -> Error msg
          | Error (`Fallback msg) ->
            Printf.eprintf "mcc: note: %s; falling back in-process\n%!" msg;
            local name source
        else local name source
      in
      match result with
      | Error msg ->
        prerr_endline ("mcc: " ^ msg);
        failed := true
      | Ok (src, trace, _hit) ->
        multi_header inv name;
        print_string src;
        List.iter
          (fun line -> Printf.eprintf "[mcc transfo: %s: %s]\n%!" name line)
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' trace)))
    units;
  if !failed then exit 1

(* --analyze: compile each unit as far as pre-pass IR, run the selected
   dataflow analyses and print the report instead of executing anything.
   Exit 1 on compile errors or on any finding, so a CI job can gate on a
   clean report.  In daemon mode this ships a [Req_analyze] (the v4
   request kind) so editors and CI poll a warm per-function analysis
   cache; no usable daemon means an in-process fallback, same output,
   same exit code. *)
let run_analyze_action inst units =
  let inv = Instance.invocation inst in
  let json = inv.Invocation.analyze_format = "json" in
  let eprint_block msg =
    prerr_string msg;
    if msg <> "" && msg.[String.length msg - 1] <> '\n' then prerr_newline ()
  in
  let local () =
    let batch = Batch.compile_into inst units in
    let failed = ref false in
    let findings = ref 0 in
    List.iter
      (fun u ->
        match u.Batch.u_result with
        | Error f ->
          report_ice ~name:u.Batch.u_name f;
          failed := true
        | Ok r -> (
          prerr_string (Diag.render_all r.Driver.diag);
          if Diag.has_errors r.Driver.diag then failed := true
          else
            match r.Driver.analysis with
            | Some report ->
              multi_header inv u.Batch.u_name;
              findings :=
                !findings + Mc_analysis.Report.finding_count report;
              print_string
                (if json then Mc_analysis.Report.render_json report
                 else Mc_analysis.Report.render_text report)
            | None ->
              (match r.Driver.codegen_error with
              | Some e ->
                Printf.eprintf "mcc: cannot analyse %s: %s\n" u.Batch.u_name e
              | None ->
                Printf.eprintf "mcc: cannot analyse %s: no IR was produced\n"
                  u.Batch.u_name);
              failed := true))
      batch.Batch.units;
    (!failed, !findings)
  in
  let remote () =
    let socket_path =
      match inv.Invocation.daemon_socket with
      | Some p -> p
      | None -> Client.default_socket ()
    in
    let failed = ref false in
    let findings = ref 0 in
    let rec go = function
      | [] -> Ok (!failed, !findings)
      | (name, source) :: rest -> (
        match
          Client.analyze ~policy:(client_policy inv) ~socket_path inv ~name
            source
        with
        | Error msg -> Error msg
        | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
          Error ("daemon rejected the request: " ^ reason)
        | Ok
            {
              Client.response =
                ( Protocol.Resp_units _ | Protocol.Resp_transformed _
                | Protocol.Resp_busy _ | Protocol.Resp_pong _ );
              _;
            } ->
          Error
            "daemon sent an unexpected response kind to an analyze request"
        | Ok
            {
              Client.response =
                Protocol.Resp_analysis { p_result; p_stats; p_wall };
              _;
            } -> (
          Instance.in_registry inst (fun () -> Client.absorb_snapshot p_stats);
          match p_result with
          | Ok a ->
            Printf.eprintf
              "[mcc --daemon: analysed %s: %d finding(s)%s, server %.6fs]\n%!"
              name a.Protocol.an_findings
              (if a.Protocol.an_cache_hit then " (full hit)" else "")
              p_wall;
            multi_header inv name;
            print_string
              (if json then a.Protocol.an_json else a.Protocol.an_text);
            findings := !findings + a.Protocol.an_findings;
            go rest
          | Error msg ->
            (* A unit-level failure (diagnostics, codegen refusal), not a
               daemon failure: report it and keep going, like the local
               path does. *)
            eprint_block msg;
            failed := true;
            go rest))
    in
    go units
  in
  let failed, findings =
    if inv.Invocation.daemon then
      match remote () with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "mcc: note: %s; falling back in-process\n%!" msg;
        local ()
    else local ()
  in
  if failed || findings > 0 then exit 1

let main files action irbuilder opt_level no_fold num_threads jobs use_cache
    cache_dir incremental daemon daemon_socket daemon_timeout daemon_retries
    defines transfo_script no_transfo_check analyze analyze_format
    stage_timings time_report
    print_stats error_limit bracket_depth loop_nest_limit gen_reproducer =
  let defines =
    List.map
      (fun d ->
        match String.index_opt d '=' with
        | Some i ->
          (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
        | None -> (d, "1"))
      defines
  in
  let inv =
    {
      Invocation.default with
      Invocation.inputs = List.map (fun p -> Invocation.File p) files;
      action =
        (* --analyze is an action in its own right; it wins over the
           default Run but composes with the shared flags (cache,
           daemon, -j, ...). *)
        (match analyze with None -> action | Some _ -> Invocation.Analyze);
      analyze =
        Option.map
          (fun s ->
            List.filter (fun p -> p <> "") (String.split_on_char ',' s))
          analyze;
      analyze_format;
      use_irbuilder = irbuilder;
      opt_level;
      fold = not no_fold;
      defines;
      jobs;
      cache_enabled = use_cache || incremental || cache_dir <> None;
      cache_dir;
      incremental;
      daemon =
        daemon || daemon_socket <> None || daemon_timeout <> None
        || daemon_retries <> None;
      daemon_socket;
      daemon_timeout;
      daemon_retries;
      transfo_script = Option.map (fun p -> Invocation.File p) transfo_script;
      transfo_check = not no_transfo_check;
      num_threads;
      stage_timings;
      time_report;
      print_stats;
      error_limit = max 0 error_limit;
      bracket_depth = max 1 bracket_depth;
      loop_nest_limit = max 1 loop_nest_limit;
      gen_reproducer;
    }
  in
  (* Load the script eagerly: the contents must travel by value to a
     daemon, and an unreadable script should die like an unreadable
     input, before any compilation starts. *)
  let inv =
    match Invocation.load_transfo_script inv with
    | Ok inv -> inv
    | Error msg -> die "%s" msg
  in
  let inst = Instance.create inv in
  (* Registered before the action so the reports also appear on the exit-1
     error paths, like Clang's — but rendered from the instance registry,
     and at most once per instance. *)
  Instance.report_at_exit inst;
  match Invocation.load_inputs inv with
  | Error msg -> die "%s" msg
  | Ok units -> (
    match inv.Invocation.action with
    | Invocation.Run | Invocation.Emit_ir ->
      if inv.Invocation.daemon then begin
        match run_daemon_action inst units with
        | Ok () -> ()
        | Error msg ->
          (* No usable daemon (unreachable, busy past the retry budget,
             timed out…): compile in-process, same flags, same
             behaviour, same exit code — but counted and classified, not
             silent. *)
          let outcome =
            Instance.in_registry inst (fun () -> Client.note_fallback msg)
          in
          Printf.eprintf "mcc: note: %s; falling back in-process\n%!"
            (Client.render_outcome outcome);
          run_compile_action inst units
      end
      else run_compile_action inst units
    | Invocation.Emit_transformed -> run_transform_action inst units
    | Invocation.Analyze -> run_analyze_action inst units
    | Invocation.Ast_dump | Invocation.Ast_dump_shadow | Invocation.Ast_print
    | Invocation.Print_transformed | Invocation.Syntax_only ->
      run_frontend_action inst units)

open Cmdliner

let files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE" ~doc:"C source files ('-' for stdin)")

let action_arg =
  let flags =
    [
      (Invocation.Ast_dump, Arg.info [ "ast-dump" ] ~doc:"Print the (syntactic) AST");
      ( Invocation.Ast_dump_shadow,
        Arg.info [ "ast-dump-shadow" ]
          ~doc:"Print the AST including hidden shadow-AST children" );
      (Invocation.Ast_print, Arg.info [ "ast-print" ] ~doc:"Unparse the AST back to C");
      ( Invocation.Print_transformed,
        Arg.info [ "print-transformed" ]
          ~doc:"Unparse every transformation's generated (shadow) loop" );
      (Invocation.Emit_ir, Arg.info [ "emit-ir" ] ~doc:"Print the generated IR");
      ( Invocation.Emit_transformed,
        Arg.info [ "emit-transformed" ]
          ~doc:
            "Apply the $(b,--transfo-script) and print the rewritten program \
             without compiling it" );
      ( Invocation.Syntax_only,
        Arg.info [ "syntax-only" ] ~doc:"Stop after semantic analysis" );
      ( Invocation.Syntax_only,
        Arg.info [ "fsyntax-only" ]
          ~doc:"Stop after semantic analysis (Clang spelling)" );
    ]
  in
  Arg.(value & vflag Invocation.Run flags)

let irbuilder_arg =
  Arg.(
    value & flag
    & info [ "fopenmp-enable-irbuilder" ]
        ~doc:"Use the OpenMPIRBuilder lowering path (paper §3)")

let opt_arg =
  Arg.(value & opt int 1 & info [ "O" ] ~docv:"LEVEL" ~doc:"Optimization level (0 or 1)")

let no_fold_arg =
  Arg.(
    value & flag
    & info [ "no-builder-folding" ]
        ~doc:"Disable the IRBuilder's on-the-fly simplification (ablation)")

let threads_arg =
  Arg.(value & opt int 4 & info [ "num-threads" ] ~doc:"Simulated OpenMP team size")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Compile the input files in parallel on $(docv) domains")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Enable the content-addressed compile cache (hash of the \
           preprocessed unit + backend options)")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the stage cache in $(docv) (content-addressed, \
           version-checked; corrupt entries are treated as misses), so warm \
           starts survive restarts and are shareable across processes \
           (implies $(b,--cache))")

let daemon_arg =
  Arg.(
    value & flag
    & info [ "daemon" ]
        ~doc:
          "Compile through a running $(b,mccd) compile server, falling back \
           to the in-process pipeline when none is reachable")

let daemon_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "daemon-socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket of the $(b,mccd) server (implies \
           $(b,--daemon); default \\$MCCD_SOCKET or mccd-<uid>.sock in the \
           temp directory)")

let daemon_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "daemon-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Deadline for each daemon round-trip (connect, send and receive); \
           a deadline miss falls back to the in-process pipeline (implies \
           $(b,--daemon))")

let daemon_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "daemon-retries" ] ~docv:"N"
        ~doc:
          "Retry up to $(docv) times, with exponential backoff, when the \
           daemon sheds the request with a busy reply (default 3; implies \
           $(b,--daemon))")

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "After the cold batch, recompile every unit against the stage \
           cache and report per-unit cold/warm times and the per-stage \
           reuse trace (implies $(b,--cache))")

let defines_arg =
  Arg.(
    value & opt_all string []
    & info [ "D" ] ~docv:"NAME=VALUE"
        ~doc:"Predefine an object-like macro (VALUE defaults to 1)")

let transfo_script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "transfo-script" ] ~docv:"FILE"
        ~doc:
          "Apply the transformation script in $(docv) (one '<op> [params] @ \
           <target>' step per line) to every input before compiling it; each \
           step is checked by a differential run on the IR interpreter \
           unless $(b,--no-transfo-check) is given")

let no_transfo_check_arg =
  Arg.(
    value & flag
    & info [ "no-transfo-check" ]
        ~doc:
          "Skip the differential semantic check after each transfo-script \
           step")

let analyze_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "analyze" ] ~docv:"PASSES"
        ~doc:
          "Run the dataflow analyses and print the report instead of \
           executing anything: bare $(b,--analyze) runs every pass, \
           $(b,--analyze=)$(docv) a comma-separated subset of uninit, \
           unreachable, leak, deps.  Exits 1 when any finding is reported")

let analyze_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", "text"); ("json", "json") ]) "text"
    & info [ "analyze-format" ] ~docv:"FORMAT"
        ~doc:"Analysis report rendering: $(b,text) (default) or $(b,json)")

let timings_arg =
  Arg.(value & flag & info [ "stage-timings" ] ~doc:"Report per-layer times (Fig. 1)")

let time_report_arg =
  Arg.(
    value & flag
    & info [ "ftime-report" ]
        ~doc:"Print a per-stage wall-clock time report (Clang's -ftime-report)")

let print_stats_arg =
  Arg.(
    value & flag
    & info [ "print-stats" ]
        ~doc:"Print the pipeline's statistic counters (Clang's -print-stats)")

let error_limit_arg =
  Arg.(
    value
    & opt int Invocation.default.Invocation.error_limit
    & info [ "ferror-limit" ] ~docv:"N"
        ~doc:"Stop emitting diagnostics after $(docv) errors (0 = unlimited)")

let bracket_depth_arg =
  Arg.(
    value
    & opt int Invocation.default.Invocation.bracket_depth
    & info [ "fbracket-depth" ] ~docv:"N"
        ~doc:"Maximum expression/statement nesting depth the parser accepts")

let loop_nest_limit_arg =
  Arg.(
    value
    & opt int Invocation.default.Invocation.loop_nest_limit
    & info [ "floop-nest-limit" ] ~docv:"N"
        ~doc:"Maximum loop-nest depth a directive may request (collapse/sizes)")

let gen_reproducer_arg =
  Arg.(
    value
    & vflag true
        [
          ( false,
            info [ "fno-crash-diagnostics" ]
              ~doc:"Do not write ICE reproducer bundles" );
          ( true,
            info [ "gen-reproducer" ]
              ~doc:"Write an ICE reproducer bundle on crashes (the default)" );
        ])

let cmd =
  let doc = "mini-Clang with OpenMP loop transformations (paper reproduction)" in
  Cmd.v
    (Cmd.info "mcc" ~doc)
    Term.(
      const main $ files_arg $ action_arg $ irbuilder_arg $ opt_arg
      $ no_fold_arg $ threads_arg $ jobs_arg $ cache_arg $ cache_dir_arg
      $ incremental_arg $ daemon_arg $ daemon_socket_arg $ daemon_timeout_arg
      $ daemon_retries_arg $ defines_arg
      $ transfo_script_arg $ no_transfo_check_arg
      $ analyze_arg $ analyze_format_arg
      $ timings_arg $ time_report_arg $ print_stats_arg $ error_limit_arg
      $ bracket_depth_arg $ loop_nest_limit_arg $ gen_reproducer_arg)

(* Clang spells long options with a single dash (-ftime-report, -emit-ir);
   cmdliner only parses them with two.  Accept the Clang spelling by
   promoting known single-dash long flags to their double-dash form. *)
let long_flags =
  [
    "ast-dump"; "ast-dump-shadow"; "ast-print"; "print-transformed";
    "emit-ir"; "emit-transformed"; "syntax-only"; "fsyntax-only";
    "fopenmp-enable-irbuilder";
    "no-builder-folding"; "num-threads"; "stage-timings"; "ftime-report";
    "print-stats"; "cache"; "cache-dir"; "incremental"; "daemon";
    "daemon-socket"; "daemon-timeout"; "daemon-retries"; "transfo-script";
    "no-transfo-check"; "jobs"; "analyze"; "analyze-format";
    "ferror-limit";
    "fbracket-depth";
    "floop-nest-limit"; "fno-crash-diagnostics"; "gen-reproducer";
  ]

let normalize_argv argv =
  Array.map
    (fun arg ->
      let arg =
        if String.length arg > 2 && arg.[0] = '-' && arg.[1] <> '-' then begin
          let body = String.sub arg 1 (String.length arg - 1) in
          let name =
            match String.index_opt body '=' with
            | Some i -> String.sub body 0 i
            | None -> body
          in
          if List.mem name long_flags then "-" ^ arg else arg
        end
        else arg
      in
      (* Bare --analyze must not swallow the next argv element as its
         optional value (cmdliner consumes unglued values even under
         ~vopt); gluing an empty selection keeps `mcc --analyze foo.c`
         meaning "all passes over foo.c". *)
      if arg = "--analyze" then "--analyze=" else arg)
    argv

let () = exit (Cmd.eval ~argv:(normalize_argv Sys.argv) cmd)
