(* FileManager / SourceManager / diagnostics substrate tests. *)

open Helpers
module Buf = Mc_srcmgr.Memory_buffer
module Fmgr = Mc_srcmgr.File_manager
module Srcmgr = Mc_srcmgr.Source_manager
module Loc = Mc_srcmgr.Source_location
module Diag = Mc_diag.Diagnostics

let test_file_manager () =
  let fm = Fmgr.create () in
  ignore (Fmgr.add_file fm ~path:"a.h" ~contents:"AAA");
  ignore (Fmgr.add_file fm ~path:"b.h" ~contents:"BBB");
  Alcotest.(check (list string)) "order" [ "a.h"; "b.h" ] (Fmgr.files fm);
  Alcotest.(check bool) "exists" true (Fmgr.file_exists fm "a.h");
  Alcotest.(check bool) "missing" false (Fmgr.file_exists fm "c.h");
  (match Fmgr.get_file fm "b.h" with
  | Some b -> Alcotest.(check string) "contents" "BBB" (Buf.contents b)
  | None -> Alcotest.fail "b.h not found");
  (* Replacement keeps registration order. *)
  ignore (Fmgr.add_file fm ~path:"a.h" ~contents:"AAA2");
  Alcotest.(check (list string)) "order stable" [ "a.h"; "b.h" ] (Fmgr.files fm)

let test_locations () =
  let sm = Srcmgr.create () in
  let buf = Buf.create ~name:"t.c" ~contents:"abc\ndef\n\nxyz" in
  let id = Srcmgr.load_main sm buf in
  Alcotest.(check (option int)) "main id" (Some id) (Srcmgr.main_file_id sm);
  let check_presumed offset line col =
    match Srcmgr.presumed sm (Srcmgr.location sm ~file_id:id ~offset) with
    | Some p ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "offset %d" offset)
        (line, col)
        (p.Srcmgr.line, p.Srcmgr.column)
    | None -> Alcotest.fail "no presumed location"
  in
  check_presumed 0 1 1;
  check_presumed 2 1 3;
  check_presumed 4 2 1;
  check_presumed 8 3 1;
  check_presumed 9 4 1;
  check_presumed 11 4 3;
  Alcotest.(check (option string))
    "line text" (Some "def")
    (Srcmgr.line_text sm (Srcmgr.location sm ~file_id:id ~offset:5));
  Alcotest.(check string) "describe" "t.c:2:2"
    (Srcmgr.describe sm (Srcmgr.location sm ~file_id:id ~offset:5));
  Alcotest.(check string) "invalid" "<invalid loc>" (Srcmgr.describe sm Loc.invalid)

let test_location_encoding () =
  let loc = Loc.encode ~file_id:3 ~offset:12345 in
  Alcotest.(check int) "file id" 3 (Loc.file_id loc);
  Alcotest.(check int) "offset" 12345 (Loc.offset loc);
  Alcotest.(check bool) "valid" true (Loc.is_valid loc);
  Alcotest.(check bool) "invalid" false (Loc.is_valid Loc.invalid);
  Alcotest.(check int) "shift" 12349 (Loc.offset (Loc.shift loc 4))

let test_diagnostics () =
  let sm = Srcmgr.create () in
  let buf = Buf.create ~name:"d.c" ~contents:"int x = error here;" in
  let id = Srcmgr.load_main sm buf in
  let diag = Diag.create sm in
  let seen = ref 0 in
  Diag.set_consumer diag (fun _ -> incr seen);
  let loc = Srcmgr.location sm ~file_id:id ~offset:8 in
  Diag.warning diag ~loc "something odd";
  Diag.error diag ~loc ~notes:[ Diag.note ~loc "because of this" ] "bad thing";
  Alcotest.(check int) "errors" 1 (Diag.error_count diag);
  Alcotest.(check int) "warnings" 1 (Diag.warning_count diag);
  Alcotest.(check bool) "has errors" true (Diag.has_errors diag);
  Alcotest.(check int) "consumer calls" 2 !seen;
  let rendered = Diag.render_all diag in
  check_contains ~what:"render" rendered "d.c:1:9: error: bad thing";
  check_contains ~what:"caret line" rendered "int x = error here;";
  check_contains ~what:"note" rendered "note: because of this";
  check_contains ~what:"caret column" rendered "        ^"

let test_context_notes_innermost_first () =
  let sm = Srcmgr.create () in
  let buf = Buf.create ~name:"n.c" ~contents:"for (;;) ;" in
  let id = Srcmgr.load_main sm buf in
  let diag = Diag.create sm in
  let loc = Srcmgr.location sm ~file_id:id ~offset:0 in
  (* Like Clang's macro-expansion note chains, the innermost context must
     come first: the note closest to the error is the most specific. *)
  Diag.with_context_note diag ~loc "in outer transformation" (fun () ->
      Diag.with_context_note diag ~loc "in inner transformation" (fun () ->
          Diag.error diag ~loc "boom"));
  (match Diag.diagnostics diag with
  | [ d ] -> (
    match d.Diag.notes with
    | [ n1; n2 ] ->
      Alcotest.(check string) "innermost first" "in inner transformation"
        n1.Diag.message;
      Alcotest.(check string) "outermost last" "in outer transformation"
        n2.Diag.message
    | notes -> Alcotest.failf "expected 2 notes, got %d" (List.length notes))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let rendered = Diag.render_all diag in
  let index needle =
    let rec go i =
      if i + String.length needle > String.length rendered then
        Alcotest.failf "missing %S in:\n%s" needle rendered
      else if String.sub rendered i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "inner renders before outer" true
    (index "in inner transformation" < index "in outer transformation")

let test_nested_notes_render_recursively () =
  let sm = Srcmgr.create () in
  let buf = Buf.create ~name:"n.c" ~contents:"x" in
  let id = Srcmgr.load_main sm buf in
  let diag = Diag.create sm in
  let loc = Srcmgr.location sm ~file_id:id ~offset:0 in
  let inner = Diag.note ~loc "innermost detail" in
  let outer = { (Diag.note ~loc "outer detail") with Diag.notes = [ inner ] } in
  Diag.error diag ~loc ~notes:[ outer ] "deep";
  let rendered = Diag.render_all diag in
  check_contains ~what:"note" rendered "note: outer detail";
  (* Notes of notes used to be silently dropped by the renderer. *)
  check_contains ~what:"nested note" rendered "note: innermost detail"

let suite =
  [
    tc "file manager" test_file_manager;
    tc "source locations decompose" test_locations;
    tc "location encoding" test_location_encoding;
    tc "diagnostics engine" test_diagnostics;
    tc "context notes are innermost first" test_context_notes_innermost_first;
    tc "nested notes render recursively" test_nested_notes_render_recursively;
  ]
