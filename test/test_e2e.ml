(* End-to-end differential tests: every program must produce the identical
   observable trace under the classic (shadow AST) and irbuilder
   (OMPCanonicalLoop) lowering paths, at -O0 and -O1, with and without
   builder folding, for several team sizes.  This is the repository's
   strongest check that both of the paper's representations implement the
   same language. *)

open Helpers

let differential name ?threads source = tc name (fun () ->
    assert_all_configs_agree ?threads ~name source)

let prelude = "void record(long x);\nvoid recordf(double x);\n"

(* ---- plain C ----------------------------------------------------------- *)

let c_programs =
  [
    ( "arithmetic and conversions",
      prelude
      ^ "int main(void) {\n\
         int a = 7; long b = 3000000000l; unsigned c = 4000000000u;\n\
         double d = 2.5; float e = 0.5;\n\
         record(a + b);\n\
         record((long)(c / 3u));\n\
         record((long)(d * e * 8.0));\n\
         record(a % 3); record(-a / 2); record(a << 4); record(a >> 1);\n\
         record((a ^ 5) | (a & 3));\n\
         record(b > a ? 1 : 2);\n\
         char small = 200;\n\
         record(small);\n\
         return 0; }" );
    ( "control flow",
      prelude
      ^ "int main(void) {\n\
         int i = 0;\n\
         while (i < 5) { record(i); i += 1; }\n\
         do { record(100 + i); i -= 1; } while (i > 2);\n\
         for (int j = 0; j < 10; j += 1) {\n\
         if (j == 2) continue;\n\
         if (j == 7) break;\n\
         record(200 + j);\n\
         }\n\
         return 0; }" );
    ( "functions and recursion",
      prelude
      ^ "long fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
         int main(void) { for (int i = 0; i < 12; i += 1) record(fib(i)); return 0; }"
    );
    ( "arrays and pointers",
      prelude
      ^ "void fill(int *p, int n) { for (int i = 0; i < n; i += 1) p[i] = i * i; }\n\
         int main(void) {\n\
         int a[10];\n\
         fill(a, 10);\n\
         int *q = a + 3;\n\
         record(a[4] + q[1] + *q);\n\
         record(&a[9] - &a[2]);\n\
         int m[3][4];\n\
         for (int i = 0; i < 3; i += 1)\n\
         for (int j = 0; j < 4; j += 1) m[i][j] = 10 * i + j;\n\
         record(m[2][3] + m[1][0]);\n\
         return 0; }" );
    ( "short circuit and side effects",
      prelude
      ^ "int tick(int v) { record(v); return v; }\n\
         int main(void) {\n\
         if (tick(0) && tick(1)) record(-1);\n\
         if (tick(1) || tick(2)) record(-2);\n\
         int x = tick(3) ? tick(4) : tick(5);\n\
         record(x);\n\
         return 0; }" );
    ( "floats",
      prelude
      ^ "int main(void) {\n\
         double acc = 0.0;\n\
         for (int i = 1; i <= 16; i += 1) acc += 1.0 / i;\n\
         recordf(acc);\n\
         recordf(3.5 - 1.25 * 2.0);\n\
         record(acc > 3.0 ? 1 : 0);\n\
         return 0; }" );
    ( "increment operators",
      prelude
      ^ "int main(void) {\n\
         int i = 5;\n\
         record(i++); record(i); record(++i); record(i--); record(--i);\n\
         int a[3]; a[0] = 1; a[1] = 2; a[2] = 3;\n\
         int *p = a;\n\
         record(*p++); record(*p); ++p; record(*p);\n\
         return 0; }" );
    ( "switch statements",
      prelude
      ^ "long classify(int v) {\n\
         switch (v % 5) {\n\
         case 0: return 100;\n\
         case 1:\n\
         case 2: return 200;\n\
         case 3: { record(-3); break; }\n\
         default: return 400;\n\
         }\n\
         return 300;\n}\n\
         int main(void) {\n\
         for (int i = 0; i < 12; i += 1) record(classify(i));\n\
         int hits = 0;\n\
         switch (2) { case 2: hits += 1; case 3: hits += 10; default: \
         hits += 100; case 9: hits += 1000; }\n\
         record(hits);\n\
         switch (42) { case 1: record(-1); break; }\n\
         record(999);\n\
         int i = 0;\n\
         while (i < 6) {\n\
         switch (i) { case 2: i += 2; break; default: i += 1; break; }\n\
         record(i);\n\
         }\n\
         return 0; }" );
    ( "switch inside an OpenMP loop",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 0; i < 10; i += 1) {\n\
         switch (i & 3) {\n\
         case 0: record(i * 10); break;\n\
         case 1: record(i * 10 + 1); break;\n\
         default: record(i * 10 + 9); break;\n\
         }\n\
         }\n\
         return 0; }" );
    ( "preprocessor interplay",
      "#define N 6\n#define SQUARE(x) ((x) * (x))\n"
      ^ prelude
      ^ "int main(void) {\n\
         #ifdef N\n\
         for (int i = 0; i < N; i += 1) record(SQUARE(i + 1));\n\
         #else\n\
         record(-1);\n\
         #endif\n\
         return 0; }" );
  ]

(* ---- OpenMP: worksharing and regions ----------------------------------- *)

let omp_programs =
  [
    ( "parallel region with tids",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel\n\
         { record(omp_get_thread_num()); record(100 + omp_get_num_threads()); }\n\
         return 0; }",
      Some [ 1; 4 ] );
    ( "parallel num_threads",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel num_threads(3)\n\
         record(omp_get_thread_num());\n\
         return 0; }",
      None );
    ( "parallel if(0) serializes",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel if(0)\n\
         record(omp_get_num_threads());\n\
         return 0; }",
      None );
    ( "worksharing for",
      prelude
      ^ "int main(void) {\n\
         int n = 23;\n\
         #pragma omp parallel for\n\
         for (int i = 0; i < n; i += 1) record(i * 3);\n\
         return 0; }",
      None );
    ( "orphaned for in a parallel region",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp for\n\
         for (int i = 0; i < 10; i += 1) record(i);\n\
         }\n\
         return 0; }",
      None );
    ( "schedule static with chunk",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for schedule(static, 2)\n\
         for (int i = 0; i < 13; i += 1) record(i);\n\
         return 0; }",
      None );
    ( "schedule dynamic",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for schedule(dynamic, 3)\n\
         for (int i = 0; i < 17; i += 1) record(i);\n\
         #pragma omp parallel for schedule(dynamic)\n\
         for (int i = 0; i < 5; i += 1) record(100 + i);\n\
         return 0; }",
      None );
    ( "schedule guided",
      prelude
      ^ "int main(void) {\n\
         long s = 0;\n\
         #pragma omp parallel for schedule(guided, 2) reduction(+: s)\n\
         for (int i = 0; i < 40; i += 1) s += i;\n\
         record(s);\n\
         return 0; }",
      None );
    ( "dynamic region repeated in a sequential loop",
      prelude
      ^ "int main(void) {\n\
         for (int rep = 0; rep < 3; rep += 1) {\n\
         #pragma omp parallel for schedule(dynamic)\n\
         for (int i = 0; i < 6; i += 1) record(rep * 100 + i);\n\
         }\n\
         return 0; }",
      None );
    ( "dynamic over a transformation",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for schedule(dynamic, 2)\n\
         #pragma omp unroll partial(3)\n\
         for (int i = 0; i < 16; i += 1) record(i);\n\
         return 0; }",
      None );
    ( "reduction add and mul",
      prelude
      ^ "int main(void) {\n\
         long s = 0; long p = 1;\n\
         #pragma omp parallel for reduction(+: s) reduction(*: p)\n\
         for (int i = 1; i <= 10; i += 1) { s += i; p *= i > 7 ? 2 : 1; }\n\
         record(s); record(p);\n\
         return 0; }",
      None );
    ( "reduction min max",
      prelude
      ^ "int main(void) {\n\
         int lo = 2147483647; int hi = -2147483647 - 1;\n\
         #pragma omp parallel for reduction(min: lo) reduction(max: hi)\n\
         for (int i = 0; i < 20; i += 1) {\n\
         int v = (i * 7) % 13 - 5;\n\
         lo = v < lo ? v : lo;\n\
         hi = v > hi ? v : hi;\n\
         }\n\
         record(lo); record(hi);\n\
         return 0; }",
      None );
    ( "private and firstprivate",
      prelude
      ^ "int main(void) {\n\
         int t = 42; int u = 7;\n\
         #pragma omp parallel for private(t) firstprivate(u)\n\
         for (int i = 0; i < 4; i += 1) { t = i; u += i; record(t + u); }\n\
         record(t); record(u);\n\
         return 0; }",
      Some [ 1; 4 ] );
    ( "collapse(2)",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for collapse(2)\n\
         for (int i = 0; i < 5; i += 1)\n\
         for (int j = 0; j < 3; j += 1) record(i * 10 + j);\n\
         return 0; }",
      None );
    ( "critical sections",
      prelude
      ^ "int main(void) {\n\
         long total = 0;\n\
         #pragma omp parallel num_threads(3)\n\
         {\n\
         #pragma omp critical\n\
         total += omp_get_thread_num() + 1;\n\
         #pragma omp critical (named)\n\
         total *= 2;\n\
         }\n\
         record(total);\n\
         return 0; }",
      None );
    ( "barrier master single",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel num_threads(2)\n\
         {\n\
         #pragma omp master\n\
         record(1000);\n\
         #pragma omp barrier\n\
         #pragma omp single\n\
         record(2000);\n\
         }\n\
         return 0; }",
      None );
    ( "simd and for simd",
      prelude
      ^ "int main(void) {\n\
         double a[16];\n\
         #pragma omp simd simdlen(4)\n\
         for (int i = 0; i < 16; i += 1) a[i] = i * 0.5;\n\
         double s = 0.0;\n\
         #pragma omp parallel for simd reduction(+: s)\n\
         for (int i = 0; i < 16; i += 1) s += a[i];\n\
         recordf(s);\n\
         return 0; }",
      None );
  ]

(* ---- OpenMP: loop transformations --------------------------------------- *)

let transform_programs =
  [
    ( "unroll partial factors",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 0; i < 7; i += 1) record(i);\n\
         #pragma omp unroll partial(4)\n\
         for (int i = 0; i < 9; i += 1) record(10 + i);\n\
         #pragma omp unroll partial\n\
         for (int i = 0; i < 5; i += 1) record(20 + i);\n\
         return 0; }" );
    ( "unroll full and heuristic",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll full\n\
         for (int i = 0; i < 6; i += 1) record(i);\n\
         #pragma omp unroll\n\
         for (int i = 0; i < 6; i += 1) record(10 + i);\n\
         return 0; }" );
    ( "unroll with non-unit step and offset",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 7; i < 17; i += 3) record(i);\n\
         #pragma omp unroll partial(3)\n\
         for (int i = 20; i > 0; i -= 4) record(i);\n\
         return 0; }" );
    ( "tile 1d",
      prelude
      ^ "int main(void) {\n\
         #pragma omp tile sizes(4)\n\
         for (int i = 0; i < 11; i += 1) record(i);\n\
         return 0; }" );
    ( "tile 2d with remainder tiles",
      prelude
      ^ "int main(void) {\n\
         #pragma omp tile sizes(2, 3)\n\
         for (int i = 0; i < 5; i += 1)\n\
         for (int j = 0; j < 7; j += 1) record(i * 100 + j);\n\
         return 0; }" );
    ( "tile 3d",
      prelude
      ^ "int main(void) {\n\
         #pragma omp tile sizes(2, 2, 2)\n\
         for (int i = 0; i < 3; i += 1)\n\
         for (int j = 0; j < 3; j += 1)\n\
         for (int k = 0; k < 3; k += 1) record(i * 100 + j * 10 + k);\n\
         return 0; }" );
    ( "composition: unroll of unroll (Fig 6)",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll full\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 7; i < 17; i += 3) record(i);\n\
         return 0; }" );
    ( "composition: parallel for over unroll (intro example)",
      prelude
      ^ "int main(void) {\n\
         int n = 14;\n\
         #pragma omp parallel for\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 0; i < n; i += 1) record(i);\n\
         return 0; }" );
    ( "composition: for over tile",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for\n\
         #pragma omp tile sizes(5)\n\
         for (int i = 0; i < 17; i += 1) record(i);\n\
         return 0; }" );
    ( "transformations on computed data",
      prelude
      ^ "int main(void) {\n\
         double a[32]; double b[32];\n\
         for (int i = 0; i < 32; i += 1) { a[i] = i; b[i] = 0.0; }\n\
         #pragma omp unroll partial(4)\n\
         for (int i = 0; i < 32; i += 1) b[i] = 2.0 * a[i] + 1.0;\n\
         double s = 0.0;\n\
         #pragma omp tile sizes(8)\n\
         for (int i = 0; i < 32; i += 1) s += b[i];\n\
         recordf(s);\n\
         return 0; }" );
    ( "factor larger than trip count",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(16)\n\
         for (int i = 0; i < 5; i += 1) record(i);\n\
         #pragma omp tile sizes(100)\n\
         for (int i = 0; i < 7; i += 1) record(10 + i);\n\
         #pragma omp parallel for\n\
         #pragma omp unroll partial(9)\n\
         for (int i = 0; i < 4; i += 1) record(20 + i);\n\
         return 0; }" );
    ( "collapse(3) worksharing",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for collapse(3)\n\
         for (int i = 0; i < 3; i += 1)\n\
         for (int j = 0; j < 2; j += 1)\n\
         for (int k = 0; k < 4; k += 1) record(i * 100 + j * 10 + k);\n\
         return 0; }" );
    ( "long and unsigned iteration variables",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(3)\n\
         for (long i = 1000000000000l; i < 1000000000007l; i += 2) record(i);\n\
         #pragma omp tile sizes(2)\n\
         for (unsigned u = 4294967290u; u < 4294967295u; u += 1) \
         record((long)(u - 4294967290u));\n\
         return 0; }" );
    ( "private on a bare parallel",
      prelude
      ^ "int main(void) {\n\
         int t = 5; int u = 7;\n\
         #pragma omp parallel num_threads(2) private(t) firstprivate(u)\n\
         { t = omp_get_thread_num(); record(t + u); }\n\
         record(t); record(u);\n\
         return 0; }" );
    ( "nowait loops",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel num_threads(2)\n\
         {\n\
         #pragma omp for nowait\n\
         for (int i = 0; i < 6; i += 1) record(i);\n\
         #pragma omp for\n\
         for (int j = 0; j < 4; j += 1) record(100 + j);\n\
         }\n\
         return 0; }" );
    ( "bool and char arithmetic",
      prelude
      ^ "int main(void) {\n\
         bool flag = 5;\n\
         record(flag);\n\
         bool off = 0;\n\
         record(off || flag); record(off && flag);\n\
         char c = 'A';\n\
         for (int i = 0; i < 4; i += 1) { c += 1; record(c); }\n\
         unsigned char wrap = 250;\n\
         for (int i = 0; i < 10; i += 1) wrap += 1;\n\
         record(wrap);\n\
         return 0; }" );
    ( "omp 6.0 preview: reverse",
      prelude
      ^ "int main(void) {\n\
         #pragma omp reverse\n\
         for (int i = 0; i < 7; i += 1) record(i);\n\
         #pragma omp reverse\n\
         for (int i = 20; i > 8; i -= 3) record(i);\n\
         return 0; }" );
    ( "omp 6.0 preview: interchange",
      prelude
      ^ "int main(void) {\n\
         #pragma omp interchange\n\
         for (int i = 0; i < 4; i += 1)\n\
         for (int j = 0; j < 3; j += 1) record(i * 10 + j);\n\
         #pragma omp interchange permutation(3, 1, 2)\n\
         for (int i = 0; i < 2; i += 1)\n\
         for (int j = 0; j < 2; j += 1)\n\
         for (int k = 0; k < 2; k += 1) record(100 * i + 10 * j + k);\n\
         return 0; }" );
    ( "omp 6.0 preview: fuse",
      prelude
      ^ "int main(void) {\n\
         #pragma omp fuse\n\
         {\n\
         for (int i = 0; i < 3; i += 1) record(100 + i);\n\
         for (int j = 0; j < 6; j += 1) record(200 + j);\n\
         for (int k = 2; k > 0; k -= 1) record(300 + k);\n\
         }\n\
         return 0; }" );
    ( "omp 6.0 preview: consumed by worksharing",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for\n\
         #pragma omp reverse\n\
         for (int i = 0; i < 11; i += 1) record(i);\n\
         #pragma omp parallel for\n\
         #pragma omp interchange\n\
         for (int i = 0; i < 3; i += 1)\n\
         for (int j = 0; j < 4; j += 1) record(1000 + i * 10 + j);\n\
         #pragma omp for\n\
         #pragma omp fuse\n\
         {\n\
         for (int i = 0; i < 4; i += 1) record(2000 + i);\n\
         for (int j = 0; j < 7; j += 1) record(3000 + j);\n\
         }\n\
         return 0; }" );
    ( "omp 6.0 preview: reverse of tile, tile of reverse",
      prelude
      ^ "int main(void) {\n\
         #pragma omp reverse\n\
         #pragma omp tile sizes(3)\n\
         for (int i = 0; i < 8; i += 1) record(i);\n\
         #pragma omp tile sizes(3)\n\
         #pragma omp reverse\n\
         for (int i = 0; i < 8; i += 1) record(100 + i);\n\
         return 0; }" );
    ( "omp 6.0 preview: tile over fuse",
      prelude
      ^ "int main(void) {\n\
         #pragma omp tile sizes(2)\n\
         #pragma omp fuse\n\
         {\n\
         for (int i = 0; i < 3; i += 1) record(i);\n\
         for (int j = 0; j < 5; j += 1) record(10 + j);\n\
         }\n\
         return 0; }" );
    ( "omp 6.0 preview: stripe",
      prelude
      ^ "int main(void) {\n\
         #pragma omp stripe sizes(3)\n\
         for (int i = 0; i < 8; i += 1) record(i);\n\
         #pragma omp stripe sizes(2, 3)\n\
         for (int i = 0; i < 4; i += 1)\n\
         for (int j = 0; j < 5; j += 1) record(10 * i + j);\n\
         #pragma omp stripe sizes(9)\n\
         for (int i = 20; i > 8; i -= 3) record(100 + i);\n\
         return 0; }" );
    ( "omp 6.0 preview: stripe consumed and composed",
      prelude
      ^ "int main(void) {\n\
         #pragma omp parallel for\n\
         #pragma omp stripe sizes(3)\n\
         for (int i = 0; i < 10; i += 1) record(i);\n\
         #pragma omp reverse\n\
         #pragma omp stripe sizes(4)\n\
         for (int i = 0; i < 9; i += 1) record(100 + i);\n\
         return 0; }" );
    ( "unroll partial remainder (factor does not divide)",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(3)\n\
         for (int i = 0; i < 7; i += 1) record(i);\n\
         #pragma omp unroll partial(4)\n\
         for (int i = 10; i > 1; i -= 2) record(100 + i);\n\
         #pragma omp unroll partial(5)\n\
         for (int i = 0; i < 5; i += 1) record(200 + i);\n\
         return 0; }" );
    ( "tile sizes exceeding the trip count",
      prelude
      ^ "int main(void) {\n\
         #pragma omp tile sizes(9)\n\
         for (int i = 0; i < 4; i += 1) record(i);\n\
         #pragma omp tile sizes(5, 11)\n\
         for (int i = 8; i > 0; i -= 3)\n\
         for (int j = 0; j <= 6; j += 2) record(10 * i + j);\n\
         return 0; }" );
    ( "zero-trip loops under every transformation",
      prelude
      ^ "int main(void) {\n\
         record(-1);\n\
         #pragma omp tile sizes(3)\n\
         for (int i = 0; i < 0; i += 1) record(i);\n\
         #pragma omp stripe sizes(3)\n\
         for (int i = 5; i < 5; i += 1) record(i);\n\
         #pragma omp reverse\n\
         for (int i = 2; i > 2; i -= 1) record(i);\n\
         #pragma omp unroll partial(4)\n\
         for (int i = 0; i != 0; i += 1) record(i);\n\
         record(-2);\n\
         return 0; }" );
    ( "unroll inside a tile body is independent",
      prelude
      ^ "int main(void) {\n\
         for (int rep = 0; rep < 2; rep += 1) {\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 0; i < 5; i += 1) record(rep * 100 + i);\n\
         }\n\
         return 0; }" );
  ]

(* ---- range-based for ------------------------------------------------------ *)

let range_for_programs =
  [
    ( "range-for by reference mutates",
      prelude
      ^ "int main(void) {\n\
         double a[5];\n\
         for (int i = 0; i < 5; i += 1) a[i] = i;\n\
         for (double &v : a) v = v * 2.0 + 1.0;\n\
         for (double &v : a) recordf(v);\n\
         return 0; }" );
    ( "range-for by value copies",
      prelude
      ^ "int main(void) {\n\
         int a[4];\n\
         for (int i = 0; i < 4; i += 1) a[i] = i;\n\
         for (int v : a) { v += 100; record(v); }\n\
         for (int v : a) record(v);\n\
         return 0; }" );
    ( "unroll of a range-for",
      prelude
      ^ "int main(void) {\n\
         double a[9];\n\
         for (int i = 0; i < 9; i += 1) a[i] = i * 1.5;\n\
         #pragma omp unroll partial(2)\n\
         for (double &v : a) recordf(v);\n\
         return 0; }" );
  ]

(* ---- INT32 extremes (C3 related, smaller but wrap-sensitive) -------------- *)

let edge_programs =
  [
    ( "iteration near INT_MAX",
      prelude
      ^ "int main(void) {\n\
         #pragma omp unroll partial(2)\n\
         for (int i = 2147483640; i < 2147483645; i += 1) record(i);\n\
         return 0; }" );
    ( "unsigned wrap bound",
      prelude
      ^ "int main(void) {\n\
         unsigned u = 4294967290u;\n\
         for (unsigned i = u; i < 4294967295u; i += 1) record((long)(i - u));\n\
         return 0; }" );
    ( "empty loops everywhere",
      prelude
      ^ "int main(void) {\n\
         int n = 0;\n\
         record(7777);\n\
         #pragma omp parallel for\n\
         for (int i = 0; i < n; i += 1) record(i);\n\
         #pragma omp unroll partial(4)\n\
         for (int i = 5; i < 5; i += 1) record(i);\n\
         #pragma omp tile sizes(3)\n\
         for (int i = 0; i < n; i += 1) record(i);\n\
         return 0; }" );
  ]

let all_differentials =
  List.map (fun (n, s) -> differential n s) c_programs
  @ List.map
      (fun (n, s, threads) -> differential n ?threads s)
      omp_programs
  @ List.map (fun (n, s) -> differential n s) transform_programs
  @ List.map (fun (n, s) -> differential n s) range_for_programs
  @ List.map (fun (n, s) -> differential n s) edge_programs

(* ---- non-trace checks --------------------------------------------------- *)

let test_thread_count_affects_teams () =
  let source =
    prelude
    ^ "int main(void) {\n#pragma omp parallel\nrecord(omp_get_thread_num());\nreturn 0; }"
  in
  Alcotest.(check int) "4 threads" 4 (List.length (trace_of ~num_threads:4 source));
  Alcotest.(check int) "1 thread" 1 (List.length (trace_of ~num_threads:1 source))

let test_return_value () =
  let outcome = run_ok (prelude ^ "int main(void) { record(1); return 42; }") in
  Alcotest.(check (option int64)) "return" (Some 42L)
    outcome.Mc_interp.Interp.return_value

let test_print_output () =
  let outcome =
    run_ok
      (prelude
     ^ "int main(void) { print_int(7); print_long(123456789000l); \
        print_double(1.5); record(1); return 0; }")
  in
  Alcotest.(check string) "stdout" "7\n123456789000\n1.5\n"
    outcome.Mc_interp.Interp.output

let suite =
  all_differentials
  @ [
      tc "team size changes trace length" test_thread_count_affects_teams;
      tc "main return value" test_return_value;
      tc "print builtins" test_print_output;
    ]
