(* Crash-resilient compilation: fault containment around deliberate ICEs,
   reproducer bundles and their replayability, recovery AST nodes and
   cascade suppression, resource limits (-ferror-limit, -fbracket-depth,
   -floop-nest-limit), cache/ICE interaction, and a bounded in-process
   fuzz campaign asserting the no-escape invariant. *)

open Helpers
module Driver = Mc_core.Driver
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Crash_recovery = Mc_support.Crash_recovery
module Tree = Mc_ast.Tree

let good_source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   for (int i = 0; i < 10; i += 1) s += i;\nrecord(s);\nreturn 0; }"

(* The crash lives in the source ('#pragma clang __debug crash'), so the
   reproducer bundle replays the ICE by construction. *)
let crash_source =
  "int main(void) {\n#pragma clang __debug crash\nreturn 0; }"

let overflow_source =
  "int main(void) {\n#pragma clang __debug overflow_stack\nreturn 0; }"

(* ---- fault containment ------------------------------------------------ *)

let test_ice_contained_siblings_survive () =
  let inputs =
    [ ("good.c", good_source); ("boom.c", crash_source);
      ("also-good.c", good_source) ]
  in
  let batch = Batch.compile ~jobs:3 ~invocation:Invocation.default inputs in
  Alcotest.(check bool) "batch not all ok" false (Batch.all_ok batch);
  Alcotest.(check int) "one ICE counted" 1 (Batch.ices batch);
  match batch.Batch.units with
  | [ g1; boom; g2 ] ->
    let ok u =
      match u.Batch.u_result with
      | Ok r -> r.Driver.ir <> None
      | Error _ -> false
    in
    Alcotest.(check bool) "first sibling compiled" true (ok g1);
    Alcotest.(check bool) "last sibling compiled" true (ok g2);
    (match boom.Batch.u_result with
    | Ok _ -> Alcotest.fail "deliberate ICE was not contained"
    | Error f ->
      let ice = f.Instance.f_ice in
      check_contains ~what:"ICE message" ice.Crash_recovery.ice_exn
        "crash requested by '#pragma clang __debug crash'";
      Alcotest.(check string) "ICE phase" "parse-sema"
        ice.Crash_recovery.ice_phase;
      (match ice.Crash_recovery.ice_location with
      | Some loc -> check_contains ~what:"source watermark" loc "boom.c"
      | None -> Alcotest.fail "ICE carries no source watermark");
      (* A reproducer bundle exists on disk with source, report, script. *)
      match f.Instance.f_reproducer with
      | None -> Alcotest.fail "no reproducer bundle written"
      | Some dir ->
        Alcotest.(check bool) "bundle dir exists" true
          (Sys.is_directory dir);
        let read name =
          In_channel.with_open_bin (Filename.concat dir name)
            In_channel.input_all
        in
        Alcotest.(check string) "bundled source is the input" crash_source
          (read "boom.c");
        check_contains ~what:"ice.txt" (read "ice.txt") "crash requested";
        let sh = read "repro.sh" in
        check_contains ~what:"repro.sh" sh "exec mcc ";
        check_contains ~what:"repro.sh names the source" sh "boom.c")
  | _ -> Alcotest.fail "unit count"

let test_reproducer_replays () =
  (* The bundle's (invocation rendered via to_argv, bundled source) pair
     must reproduce the ICE when fed back through the public entry points
     — the programmatic equivalent of running repro.sh. *)
  let inv =
    { Invocation.default with Invocation.opt_level = 0; use_irbuilder = true }
  in
  let inst = Instance.create inv in
  match Instance.compile_safe inst ~name:"boom.c" crash_source with
  | Ok _ -> Alcotest.fail "deliberate ICE was not contained"
  | Error { Instance.f_reproducer = None; _ } ->
    Alcotest.fail "no reproducer bundle written"
  | Error { Instance.f_reproducer = Some dir; _ } -> (
    let bundled =
      In_channel.with_open_bin (Filename.concat dir "boom.c")
        In_channel.input_all
    in
    let argv =
      Array.of_list (("mcc" :: Invocation.to_argv inv) @ [ "boom.c" ])
    in
    match Invocation.of_argv argv with
    | Error e -> Alcotest.failf "reproducer argv does not parse: %s" e
    | Ok replay_inv -> (
      Alcotest.(check bool) "replay invocation round-trips" true
        (Invocation.to_driver_options replay_inv
        = Invocation.to_driver_options inv);
      let replay = Instance.create replay_inv in
      match Instance.compile_safe replay ~name:"boom.c" bundled with
      | Ok _ -> Alcotest.fail "replay did not reproduce the ICE"
      | Error f ->
        check_contains ~what:"replayed ICE"
          f.Instance.f_ice.Crash_recovery.ice_exn "crash requested"))

let test_stack_overflow_contained () =
  let inst = Instance.create Invocation.default in
  match Instance.compile_safe inst ~name:"deep.c" overflow_source with
  | Ok _ -> Alcotest.fail "stack overflow was not contained"
  | Error f ->
    check_contains ~what:"overflow ICE"
      f.Instance.f_ice.Crash_recovery.ice_exn "tack overflow"

let test_no_reproducer_when_disabled () =
  let inv = { Invocation.default with Invocation.gen_reproducer = false } in
  let inst = Instance.create inv in
  match Instance.compile_safe inst ~name:"boom.c" crash_source with
  | Ok _ -> Alcotest.fail "deliberate ICE was not contained"
  | Error f ->
    Alcotest.(check bool) "no bundle under -fno-crash-diagnostics" true
      (f.Instance.f_reproducer = None)

(* ---- cache / ICE interaction ------------------------------------------ *)

let test_ice_and_errors_never_cached () =
  let inv = { Invocation.default with Invocation.cache_enabled = true } in
  let inst = Instance.create inv in
  let cache =
    match Instance.cache inst with
    | Some c -> c
    | None -> Alcotest.fail "instance has no cache"
  in
  let backend_lengths () =
    List.map
      (fun stage -> Mc_core.Cache.stage_length cache ~stage)
      [ "ast"; "ir"; "optir" ]
  in
  (* An ICE must leave nothing from the dying stage onward: storing is
     the last act of each successfully executed stage, so a unit that
     dies in parse-sema may have cached its (clean) lex/pp artifacts but
     never an AST, IR or OptIR. *)
  (match Instance.compile_safe inst ~name:"boom.c" crash_source with
  | Ok _ -> Alcotest.fail "deliberate ICE was not contained"
  | Error _ -> ());
  Alcotest.(check (list int)) "no backend artifacts after ICE" [ 0; 0; 0 ]
    (backend_lengths ());
  (* A unit with diagnostics is never stored from the diagnosed stage on
     either. *)
  let broken = "int main(void) { return undeclared_thing; }" in
  (match Instance.compile_safe inst ~name:"broken.c" broken with
  | Ok { Instance.c_cache_hit; _ } ->
    Alcotest.(check bool) "broken unit not a hit" false c_cache_hit
  | Error f ->
    Alcotest.failf "diagnosed unit must not ICE: %s"
      f.Instance.f_ice.Crash_recovery.ice_exn);
  Alcotest.(check (list int)) "no backend artifacts after errors" [ 0; 0; 0 ]
    (backend_lengths ());
  (* A clean compile afterwards stores every stage and then hits. *)
  (match Instance.compile_safe inst ~name:"clean.c" good_source with
  | Ok { Instance.c_cache_hit; _ } ->
    Alcotest.(check bool) "first clean compile misses" false c_cache_hit
  | Error _ -> Alcotest.fail "clean unit ICEd");
  Alcotest.(check (list int)) "clean unit stored each backend stage"
    [ 1; 1; 1 ] (backend_lengths ());
  match Instance.compile_safe inst ~name:"clean.c" good_source with
  | Ok { Instance.c_cache_hit; _ } ->
    Alcotest.(check bool) "second clean compile hits" true c_cache_hit
  | Error _ -> Alcotest.fail "clean unit ICEd on the hit path"

(* ---- resource limits --------------------------------------------------- *)

let test_error_limit () =
  (* limit errors, then one final fatal, then silence: limit + 1 total. *)
  let options = { classic with Driver.error_limit = 3 } in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int main(void) {\n";
  for i = 1 to 10 do
    Buffer.add_string buf (Printf.sprintf "int a%d = undeclared_%d;\n" i i)
  done;
  Buffer.add_string buf "return 0; }\n";
  let diag, _ = Driver.frontend ~options (Buffer.contents buf) in
  Alcotest.(check int) "limit + 1 errors" 4 (Diag.error_count diag);
  Alcotest.(check bool) "limit reached" true (Diag.error_limit_reached diag);
  check_contains ~what:"final fatal" (Diag.render_all diag)
    "too many errors emitted, stopping now [-ferror-limit=]";
  (* Unlimited (the 0 setting) reports everything. *)
  let diag, _ =
    Driver.frontend
      ~options:{ classic with Driver.error_limit = 0 }
      (Buffer.contents buf)
  in
  Alcotest.(check int) "unlimited reports all" 10 (Diag.error_count diag)

let test_bracket_depth () =
  let deep n =
    "int main(void) { return " ^ String.concat "" (List.init n (fun _ -> "("))
    ^ "1" ^ String.concat "" (List.init n (fun _ -> ")")) ^ "; }"
  in
  let options = { classic with Driver.bracket_depth = 16 } in
  let diag, _ = Driver.frontend ~options (deep 40) in
  check_contains ~what:"bracket depth diagnostic" (Diag.render_all diag)
    "nesting level exceeds maximum of 16 [-fbracket-depth=]";
  (* The same source parses clean under a roomier limit. *)
  let diag, _ =
    Driver.frontend ~options:{ classic with Driver.bracket_depth = 64 } (deep 40)
  in
  Alcotest.(check bool) "fits under 64" false (Diag.has_errors diag);
  (* The guard also covers pathological statement nesting. *)
  let braces n =
    "int main(void) { " ^ String.concat "" (List.init n (fun _ -> "{")) ^ "1;"
    ^ String.concat "" (List.init n (fun _ -> "}")) ^ " return 0; }"
  in
  let diag, _ = Driver.frontend ~options (braces 40) in
  check_contains ~what:"brace depth diagnostic" (Diag.render_all diag)
    "[-fbracket-depth=]"

let test_loop_nest_limit () =
  let source =
    "int main(void) {\nlong s = 0;\n#pragma omp for collapse(100)\n\
     for (int i = 0; i < 4; i += 1) s += i;\nreturn 0; }"
  in
  let diag, tu = Driver.frontend ~options:classic source in
  check_contains ~what:"nest limit diagnostic" (Diag.render_all diag)
    "requires a loop nest of depth 100, which exceeds the maximum of 64 \
     [-floop-nest-limit=]";
  Alcotest.(check bool) "directive marked as erroneous" true
    (Tree.tu_contains_errors tu);
  (* Under a raised limit the same directive is refused only for the
     missing loops (collect_nest reports the depth still unsatisfied
     after consuming the one loop that is there). *)
  let diag, _ =
    Driver.frontend
      ~options:{ classic with Driver.loop_nest_limit = 128 }
      source
  in
  check_contains ~what:"within raised limit" (Diag.render_all diag)
    "expected 99 nested canonical for loop(s) after the directive"

(* ---- parser/sema recovery on malformed directives ---------------------- *)

let recovers ~what ~substring source =
  let diag, tu = Driver.frontend ~options:classic source in
  check_contains ~what (Diag.render_all diag) substring;
  Alcotest.(check bool) (what ^ ": AST marked") true
    (Tree.tu_contains_errors tu)

let test_malformed_directives_recover () =
  let wrap pragma loop =
    "int main(void) {\nlong s = 0;\n" ^ pragma ^ "\n" ^ loop ^ "\nreturn 0; }"
  in
  let counted_loop = "for (int i = 0; i < 8; i += 1) s += i;" in
  recovers ~what:"unknown clause"
    ~substring:"unknown OpenMP clause 'nonsense'"
    (wrap "#pragma omp unroll nonsense(3)" counted_loop);
  recovers ~what:"missing close paren"
    ~substring:"expected ')' in OpenMP clause"
    (wrap "#pragma omp unroll partial(2" counted_loop);
  recovers ~what:"non-positive partial"
    ~substring:"argument of 'partial' clause must be positive (got 0)"
    (wrap "#pragma omp unroll partial(0)" counted_loop);
  (* sizes(2, 2) wants a 2-deep nest; the body of the single loop is not a
     loop, so collection fails with one level still unsatisfied. *)
  recovers ~what:"tile arity mismatch"
    ~substring:"expected 1 nested canonical for loop(s) after the directive"
    (wrap "#pragma omp tile sizes(2, 2)" counted_loop);
  recovers ~what:"directive without a loop"
    ~substring:"expected 1 nested canonical for loop(s) after the directive"
    (wrap "#pragma omp unroll" "s += 1;")

let test_malformed_directive_does_not_cascade () =
  (* One malformed clause produces exactly one error — the rest of the
     unit still parses and analyzes (the trailing undeclared identifier
     is still caught, nothing else piles up). *)
  let source =
    "int main(void) {\nlong s = 0;\n#pragma omp unroll partial(0)\n\
     for (int i = 0; i < 8; i += 1) s += i;\nreturn later;\n}"
  in
  let diag, _ = Driver.frontend ~options:classic source in
  Alcotest.(check int) "exactly two errors" 2 (Diag.error_count diag);
  check_contains ~what:"second error" (Diag.render_all diag)
    "use of undeclared identifier 'later'"

(* ---- recovery AST nodes ------------------------------------------------ *)

let test_recovery_expr_in_ast () =
  let source = "int main(void) { return undeclared_thing + 1; }" in
  let diag, tu = Driver.frontend ~options:classic source in
  Alcotest.(check int) "single diagnostic" 1 (Diag.error_count diag);
  Alcotest.(check bool) "contains_errors set" true
    (Tree.tu_contains_errors tu);
  check_contains ~what:"ast dump" (Mc_ast.Dump.translation_unit tu)
    "RecoveryExpr";
  (* Codegen refuses the erroneous subtree cleanly instead of crashing. *)
  let r = Driver.compile ~options:classic source in
  Alcotest.(check bool) "no IR for error AST" true (r.Driver.ir = None)

let test_recovery_expr_suppresses_cascade () =
  (* Assigning through / taking the address of a recovery expression must
     not pile secondary "not assignable" errors on the primary one. *)
  let source =
    "int main(void) {\nint y = undeclared_a;\nundeclared_b += 2;\n\
     int *p = &undeclared_c;\nreturn 0; }"
  in
  let diag, _ = Driver.frontend ~options:classic source in
  Alcotest.(check int) "three primary errors only" 3 (Diag.error_count diag)

let test_error_stmt_unparse_and_dump () =
  let source = "int main(void) {\n#pragma clang bogus\nreturn 0;\n}" in
  let diag, tu = Driver.frontend ~options:classic source in
  Alcotest.(check bool) "diagnosed" true (Diag.has_errors diag);
  check_contains ~what:"diagnostic" (Diag.render_all diag)
    "unknown clang pragma";
  check_contains ~what:"dump shows ErrorStmt"
    (Mc_ast.Dump.translation_unit tu) "ErrorStmt"

(* ---- batch statistics -------------------------------------------------- *)

let test_batch_failure_taxonomy () =
  let inputs =
    [ ("ice.c", crash_source);
      ("diag.c", "int main(void) { return undeclared; }");
      (* Sema-clean but refused by codegen (pointers as booleans are
         outside the supported subset) — the third failure class. *)
      ( "refused.c",
        "int main(void) { int x = 0; int *p = &x; if (p) return 1;\n\
         return 0; }" );
      ("ok.c", good_source) ]
  in
  let batch = Batch.compile ~jobs:2 ~invocation:Invocation.default inputs in
  Alcotest.(check int) "ices" 1 (Batch.ices batch);
  Alcotest.(check int) "error units" 1 (Batch.errors batch);
  Alcotest.(check int) "codegen refusals" 1 (Batch.codegen_errors batch);
  Alcotest.(check bool) "merged stats count the ICE" true
    (List.mem_assoc "driver.ices" batch.Batch.stats
    && List.assoc "driver.ices" batch.Batch.stats = 1)

(* ---- invocation flags round-trip --------------------------------------- *)

let test_limit_flags_round_trip () =
  let argv =
    [|
      "mcc"; "-ferror-limit=7"; "-fbracket-depth=32"; "-floop-nest-limit=9";
      "-fno-crash-diagnostics"; "x.c";
    |]
  in
  let inv =
    match Invocation.of_argv argv with
    | Ok inv -> inv
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check int) "error limit" 7 inv.Invocation.error_limit;
  Alcotest.(check int) "bracket depth" 32 inv.Invocation.bracket_depth;
  Alcotest.(check int) "loop nest limit" 9 inv.Invocation.loop_nest_limit;
  Alcotest.(check bool) "reproducers off" false inv.Invocation.gen_reproducer;
  (* to_argv renders the non-default settings back; of_argv re-reads them. *)
  let argv' = Array.of_list (("mcc" :: Invocation.to_argv inv) @ [ "x.c" ]) in
  (match Invocation.of_argv argv' with
  | Ok inv' ->
    Alcotest.(check bool) "argv round-trips" true
      (inv' = { inv with Invocation.inputs = inv'.Invocation.inputs })
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  (* The limits participate in the cache fingerprint. *)
  Alcotest.(check bool) "fingerprint differs from default" true
    (Invocation.fingerprint inv <> Invocation.fingerprint Invocation.default)

(* ---- bounded fuzz campaign --------------------------------------------- *)

let test_fuzz_no_escape () =
  let report =
    Mc_fuzz.Fuzz.run ~corpus:[ good_source ] ~jobs:[ 1; 2 ] ~n:24 ~seed:42 ()
  in
  Alcotest.(check int) "all inputs exercised" 24 report.Mc_fuzz.Fuzz.total;
  match report.Mc_fuzz.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "containment violated on %s (-j %d): %s\nminimized:\n%s"
      f.Mc_fuzz.Fuzz.fz_name f.Mc_fuzz.Fuzz.fz_jobs f.Mc_fuzz.Fuzz.fz_message
      f.Mc_fuzz.Fuzz.fz_source

let test_fuzz_minimizer () =
  (* The minimizer strips everything not needed to reproduce the crash. *)
  let noisy =
    "void record(long x);\nint unused(int a) { return a * 2; }\n"
    ^ crash_source
  in
  let minimized = Mc_fuzz.Fuzz.minimize noisy in
  check_contains ~what:"kept the crash line" minimized "__debug crash";
  Alcotest.(check bool) "dropped unrelated code" false
    (contains_substring minimized "unused");
  Alcotest.(check bool) "still fails" true
    (String.length minimized < String.length noisy)

let suite =
  [
    tc "ICE contained, siblings survive, bundle on disk"
      test_ice_contained_siblings_survive;
    tc "reproducer bundle replays the ICE" test_reproducer_replays;
    tc "stack overflow contained" test_stack_overflow_contained;
    tc "-fno-crash-diagnostics suppresses bundles"
      test_no_reproducer_when_disabled;
    tc "ICEs and diagnosed units never cached" test_ice_and_errors_never_cached;
    tc "-ferror-limit stops the cascade" test_error_limit;
    tc "-fbracket-depth guards parser recursion" test_bracket_depth;
    tc "-floop-nest-limit caps directive depth" test_loop_nest_limit;
    tc "malformed directives recover with exact diagnostics"
      test_malformed_directives_recover;
    tc "malformed directive does not cascade"
      test_malformed_directive_does_not_cascade;
    tc "RecoveryExpr in AST; codegen refuses" test_recovery_expr_in_ast;
    tc "recovery expressions suppress cascades"
      test_recovery_expr_suppresses_cascade;
    tc "ErrorStmt visible in dumps" test_error_stmt_unparse_and_dump;
    tc "batch failure taxonomy (ices/errors/codegen)"
      test_batch_failure_taxonomy;
    tc "limit flags parse, render and fingerprint"
      test_limit_flags_round_trip;
    tc "bounded fuzz: no escapes at -j 1 and -j 2" test_fuzz_no_escape;
    tc "fuzz minimizer shrinks a crashing input" test_fuzz_minimizer;
  ]
