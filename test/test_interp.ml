(* Interpreter and simulated-runtime tests, including the schedule
   partition properties of the libomp stand-in. *)

open Helpers
open Mc_ir.Ir
module B = Mc_ir.Builder
module Interp = Mc_interp.Interp
module Schedule = Mc_omprt.Schedule

let trap_message f =
  match f () with
  | exception Interp.Trap msg -> msg
  | (_ : Interp.outcome) -> Alcotest.fail "expected a trap"

let build_main ~ret build =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create ~fold:false () in
  B.set_insertion_point b entry;
  build b m;
  m

let test_memory_roundtrip () =
  (* Store/load every scalar width through memory. *)
  let m =
    build_main ~ret:I32 (fun b _ ->
        let check ty v =
          let p = B.alloca b ty in
          B.store b (Const_int (ty, v)) ~ptr:p;
          let loaded = B.load b ty p in
          let wide = B.cast b Sext loaded I64 in
          ignore (B.call b ~ret:Void (Runtime "record") [ wide ])
        in
        check I8 (-5L);
        check I16 1000L;
        check I32 (-100000L);
        check I64 123456789012L;
        let pf = B.alloca b F64 in
        B.store b (Const_float (F64, 2.5)) ~ptr:pf;
        ignore (B.call b ~ret:Void (Runtime "recordf") [ B.load b F64 pf ]);
        let ps = B.alloca b F32 in
        B.store b (Const_float (F32, 0.5)) ~ptr:ps;
        ignore
          (B.call b ~ret:Void (Runtime "recordf")
             [ B.cast b Fpext (B.load b F32 ps) F64 ]);
        B.ret b (Some (i32_const 0)))
  in
  let outcome = Interp.run_main m in
  Alcotest.(check string) "roundtrips"
    "-5;1000;-100000;123456789012;0x1.4p+1;0x1p-1"
    (trace_to_string outcome.Interp.trace)

let test_gep_arithmetic () =
  let m =
    build_main ~ret:I32 (fun b _ ->
        let arr = B.alloca b ~count:8 I64 in
        (* a[3] = 33; a[5] = 55; record both via pointer arithmetic. *)
        let slot3 = B.gep b ~elt_ty:I8 arr (i64_const 24) in
        B.store b (i64_const 33) ~ptr:slot3;
        let slot5 = B.gep b ~elt_ty:I64 arr (i64_const 5) in
        B.store b (i64_const 55) ~ptr:slot5;
        ignore (B.call b ~ret:Void (Runtime "record") [ B.load b I64 slot3 ]);
        ignore (B.call b ~ret:Void (Runtime "record") [ B.load b I64 slot5 ]);
        (* Pointer difference in bytes. *)
        let diff = B.sub b slot5 slot3 in
        ignore (B.call b ~ret:Void (Runtime "record") [ diff ]);
        B.ret b (Some (i32_const 0)))
  in
  let outcome = Interp.run_main m in
  Alcotest.(check string) "gep" "33;55;16" (trace_to_string outcome.Interp.trace)

let test_traps () =
  let msg =
    trap_message (fun () ->
        Interp.run_main
          (build_main ~ret:I32 (fun b _ ->
               let z = B.call b ~ret:I32 (Runtime "omp_get_thread_num") [] in
               let d = B.sdiv b (i32_const 1) z in
               B.ret b (Some d))))
  in
  check_contains ~what:"div" msg "division by zero";
  let msg =
    trap_message (fun () ->
        Interp.run_main
          (build_main ~ret:I32 (fun b _ ->
               let p = B.alloca b I32 in
               let beyond = B.gep b ~elt_ty:I32 p (i64_const 5) in
               B.store b (i32_const 1) ~ptr:beyond;
               B.ret b (Some (i32_const 0)))))
  in
  check_contains ~what:"oob" msg "out of bounds";
  let msg =
    trap_message (fun () ->
        Interp.run_main
          (build_main ~ret:I32 (fun b _ ->
               ignore (B.call b ~ret:Void (Runtime "made_up_fn") []);
               B.ret b (Some (i32_const 0)))))
  in
  check_contains ~what:"unknown" msg "unknown runtime function"

let test_fuel () =
  let m =
    build_main ~ret:Void (fun b _ ->
        let f = Option.get ((B.insertion_block b).b_parent) in
        let loop = create_block ~name:"loop" f in
        B.br b loop;
        B.set_insertion_point b loop;
        B.br b loop)
  in
  match
    Interp.run_main
      ~config:{ Interp.default_config with Interp.num_threads = 1; max_steps = 1000 }
      m
  with
  | exception Interp.Trap msg -> check_contains ~what:"fuel" msg "fuel"
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_use_before_def_is_trapped () =
  (* A structurally plausible but dominance-broken use: the verifier's
     lightweight check misses it, the interpreter must trap. *)
  let m =
    build_main ~ret:I32 (fun b m ->
        ignore m;
        let f = Option.get ((B.insertion_block b).b_parent) in
        let skip_from = B.insertion_block b in
        let dead = create_block ~name:"dead" f in
        let join = create_block ~name:"join" f in
        skip_from.b_term <- Br join;
        B.set_insertion_point b dead;
        let v = B.add b (i32_const 1) (i32_const 2) in
        (match v with
        | Inst_ref _ -> ()
        | _ -> Alcotest.fail "fold off");
        B.br b join;
        B.set_insertion_point b join;
        B.ret b (Some v))
  in
  match Interp.run_main m with
  | exception Interp.Trap msg -> check_contains ~what:"udef" msg "before definition"
  | _ -> Alcotest.fail "expected use-before-def trap"

let test_nested_parallel_defaults_to_one () =
  let m =
    build_main ~ret:I32 (fun b m ->
        Mc_ompbuilder.Omp_builder.create_parallel b m ~name:"outer"
          ~num_threads:(Some (i32_const 2)) ~if_cond:None ~captures:[]
          ~body_gen:(fun b ~get_capture ->
            ignore get_capture;
            Mc_ompbuilder.Omp_builder.create_parallel b m ~name:"inner"
              ~num_threads:None ~if_cond:None ~captures:[]
              ~body_gen:(fun b ~get_capture ->
                ignore get_capture;
                let n = B.call b ~ret:I32 (Runtime "omp_get_num_threads") [] in
                ignore
                  (B.call b ~ret:Void (Runtime "record") [ B.cast b Sext n I64 ])));
        B.ret b (Some (i32_const 0)))
  in
  let outcome = Interp.run_main m in
  Alcotest.(check string) "inner teams are singletons" "1;1"
    (trace_to_string outcome.Interp.trace)

(* ---- omp_get_wtime ---------------------------------------------------------- *)

let wtime_source =
  "double omp_get_wtime(void);\nvoid recordf(double x);\n\
   int main(void) {\n\
   double t0 = omp_get_wtime();\n\
   long s = 0;\n\
   for (int i = 0; i < 200; i += 1) s += i;\n\
   double t1 = omp_get_wtime();\n\
   recordf(t1 - t0);\n\
   return 0; }"

let delta_of outcome =
  match outcome.Interp.trace with
  | [ Interp.T_float d ] -> d
  | _ -> Alcotest.fail "expected exactly one float trace entry"

let test_wtime_delta_positive_and_deterministic () =
  (* Elapsed time around a loop must be positive (the loop costs steps and
     the virtual clock advances with them) — with the old Sys.time ()
     reading, the delta was CPU time and could round to 0. *)
  let o1 = run_ok wtime_source in
  Alcotest.(check bool) "positive delta" true (delta_of o1 > 0.0);
  (* The default virtual clock is keyed off the step count, so the delta
     is bit-identical across runs: differential trace tests stay
     reproducible. *)
  let o2 = run_ok wtime_source in
  Alcotest.(check bool) "deterministic across runs" true
    (Interp.trace_equal o1.Interp.trace o2.Interp.trace)

let test_wtime_real_clock_monotonic () =
  let r = Driver.compile wtime_source in
  let config = { Interp.default_config with Interp.wtime = Interp.Wtime_real } in
  match Driver.run ~config r with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok o ->
    (* Wall clock: non-negative, monotonic (Clock never goes backwards). *)
    Alcotest.(check bool) "non-negative delta" true (delta_of o >= 0.0)

(* ---- schedule properties ---------------------------------------------------- *)

let arb_schedule =
  QCheck.(pair (int_range 1 64) (int_range 0 2000))

let props =
  [
    prop "static chunks partition the space" arb_schedule (fun (nth, trip) ->
        let chunks =
          List.init nth (fun tid ->
              let c =
                Schedule.static_unchunked ~trip_count:(Int64.of_int trip)
                  ~num_threads:nth ~tid
              in
              (c.Schedule.lb, c.Schedule.ub))
        in
        Schedule.coverage chunks ~trip_count:(Int64.of_int trip));
    prop "static chunks are balanced within 1" arb_schedule (fun (nth, trip) ->
        let sizes =
          List.init nth (fun tid ->
              let c =
                Schedule.static_unchunked ~trip_count:(Int64.of_int trip)
                  ~num_threads:nth ~tid
              in
              Int64.to_int (Int64.sub c.Schedule.ub c.Schedule.lb) + 1)
        in
        let mx = List.fold_left max 0 sizes in
        let mn = List.fold_left min max_int sizes in
        mx - max 0 mn <= 1 || trip = 0);
    prop "dynamic queue covers the space"
      QCheck.(pair (int_range 0 500) (int_range 1 17))
      (fun (trip, chunk) ->
        let st =
          Schedule.dynamic_create ~trip_count:(Int64.of_int trip)
            ~chunk_size:(Int64.of_int chunk)
        in
        let rec drain acc =
          match Schedule.dynamic_next st with
          | Some c -> drain ((c.Schedule.lb, c.Schedule.ub) :: acc)
          | None -> acc
        in
        Schedule.coverage (drain []) ~trip_count:(Int64.of_int trip));
    prop "guided queue covers the space with shrinking chunks"
      QCheck.(triple (int_range 0 800) (int_range 1 9) (int_range 1 16))
      (fun (trip, chunk_min, nth) ->
        let st =
          Schedule.guided_create ~trip_count:(Int64.of_int trip)
            ~chunk_min:(Int64.of_int chunk_min) ~num_threads:nth
        in
        let rec drain sizes acc =
          match Schedule.dynamic_next st with
          | Some c ->
            drain
              (Int64.to_int (Int64.sub c.Schedule.ub c.Schedule.lb) + 1 :: sizes)
              ((c.Schedule.lb, c.Schedule.ub) :: acc)
          | None -> (List.rev sizes, acc)
        in
        let sizes, chunks = drain [] [] in
        Schedule.coverage chunks ~trip_count:(Int64.of_int trip)
        && (* non-increasing until the floor *)
        fst
          (List.fold_left
             (fun (ok, prev) s -> (ok && s <= max prev chunk_min, s))
             (true, max_int) sizes));
  ]

let suite =
  [
    tc "memory round trips" test_memory_roundtrip;
    tc "gep arithmetic and pointer difference" test_gep_arithmetic;
    tc "runtime traps" test_traps;
    tc "fuel limit" test_fuel;
    tc "use before definition traps" test_use_before_def_is_trapped;
    tc "nested parallel defaults to one thread" test_nested_parallel_defaults_to_one;
    tc "omp_get_wtime delta is positive and deterministic"
      test_wtime_delta_positive_and_deterministic;
    tc "omp_get_wtime real clock is monotonic" test_wtime_real_clock_monotonic;
  ]
  @ props
