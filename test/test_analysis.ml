(* Dataflow analysis suite: engine convergence on diamonds and loops,
   the uninitialized-read / unreachable-code / resource-leak passes
   (true positives and the false-positive guards), the per-directive
   dependence verdicts on known-safe and known-unsafe loops, and
   warm-cache report identity through the pipeline's analysis stage. *)

open Helpers
module Driver = Mc_core.Driver
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Stats = Mc_support.Stats
module Ir = Mc_ir.Ir
module Srcmgr = Mc_srcmgr.Source_manager
module Cfg = Mc_analysis.Cfg
module Dataflow = Mc_analysis.Dataflow
module Analyzer = Mc_analysis.Analyzer
module Report = Mc_analysis.Report

(* Compile classic -O0 (allocas intact — what the pipeline's analysis
   stage analyses) and hand back the module plus a describe function. *)
let compile_ir source =
  let r = Driver.compile ~options:(o0 classic) source in
  if Diag.has_errors r.Driver.diag then
    Alcotest.failf "compile failed:\n%s" (Diag.render_all r.Driver.diag);
  match r.Driver.ir with
  | Some m -> (m, fun loc -> Srcmgr.describe r.Driver.srcmgr loc)
  | None ->
    Alcotest.failf "no IR (%s)"
      (Option.value ~default:"?" r.Driver.codegen_error)

let func_named m name =
  match
    List.find_opt (fun (f : Ir.func) -> f.Ir.f_name = name) m.Ir.m_funcs
  with
  | Some f -> f
  | None -> Alcotest.failf "no function '%s' in the module" name

(* Through the driver's own analyze hook — the report comes off the
   pre-pass IR exactly as `mcc --analyze` sees it (allocas intact, dead
   blocks not yet pruned). *)
let analyze ?(passes = []) source =
  let options = { (o0 classic) with Driver.analyze = Some passes } in
  let r = Driver.compile ~options source in
  if Diag.has_errors r.Driver.diag then
    Alcotest.failf "compile failed:\n%s" (Diag.render_all r.Driver.diag);
  match r.Driver.analysis with
  | Some report -> report
  | None -> Alcotest.fail "driver produced no analysis report"

let findings_of_pass report pass =
  List.filter (fun (f : Report.finding) -> f.Report.f_pass = pass)
    (Report.findings report)

let verdict_of report ~func ~directive =
  match
    List.find_opt (fun (lr : Report.loop_report) -> lr.Report.lr_func = func)
      (Report.loops report)
  with
  | None -> Alcotest.failf "no loop report for '%s'" func
  | Some lr -> (
    match
      List.find_opt
        (fun (dv : Report.directive_verdict) ->
          dv.Report.dv_directive = directive)
        lr.Report.lr_directives
    with
    | Some dv -> dv.Report.dv_verdict
    | None -> Alcotest.failf "no '%s' verdict for '%s'" directive func)

let check_verdict msg want report ~func ~directive =
  Alcotest.(check string) msg
    (Report.verdict_name want)
    (Report.verdict_name (verdict_of report ~func ~directive))

(* ---- the engine ---------------------------------------------------------- *)

(* An if/else diamond is acyclic: the FIFO worklist seeded in RPO must
   converge in one sweep (every block transferred exactly once), and the
   definitions from both arms must reach the join. *)
let test_engine_diamond_converges () =
  let m, _ =
    compile_ir
      "long f(long n) {\n  long x;\n  if (n > 0) x = 1; else x = 2;\n\
      \  return x;\n}\nint main(void) { return 0; }"
  in
  let cfg = Cfg.build (func_named m "f") in
  let n_blocks = List.length cfg.Cfg.rpo in
  let rd =
    Dataflow.reaching_defs cfg ~tracked:(fun _ -> true)
  in
  Alcotest.(check int) "acyclic graph: one transfer per block" n_blocks
    rd.Dataflow.rd_iterations;
  (* the return block joins a definition of x from each arm *)
  let exit_block =
    List.find
      (fun (b : Ir.block) ->
        match b.Ir.b_term with Ir.Ret _ -> true | _ -> false)
      cfg.Cfg.rpo
  in
  let by_slot = Hashtbl.create 4 in
  Dataflow.Int_set.iter
    (fun ix ->
      let d = rd.Dataflow.rd_defs.(ix) in
      match d.Dataflow.rd_store with
      | Some _ ->
        let k = d.Dataflow.rd_slot.Ir.i_id in
        Hashtbl.replace by_slot k
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_slot k))
      | None -> ())
    (rd.Dataflow.rd_entry exit_block);
  (* x's slot joins one store from each arm; n's parameter spill is the
     only other reaching store *)
  let max_per_slot = Hashtbl.fold (fun _ v acc -> max v acc) by_slot 0 in
  Alcotest.(check int) "both arm definitions reach the join" 2 max_per_slot

(* A loop needs a second visit of the header (the latch feeds facts
   back), strictly more transfers than blocks — and still terminates. *)
let test_engine_loop_converges () =
  let m, _ =
    compile_ir
      "long g(long n) {\n  long s = 0;\n\
      \  for (long i = 0; i < n; i += 1) s = s + i;\n  return s;\n}\n\
       int main(void) { return 0; }"
  in
  let cfg = Cfg.build (func_named m "g") in
  let n_blocks = List.length cfg.Cfg.rpo in
  let lv = Dataflow.liveness cfg ~tracked:(fun _ -> true) in
  Alcotest.(check bool) "cyclic graph: needed a re-visit" true
    (lv.Dataflow.lv_iterations > n_blocks);
  Alcotest.(check bool) "and converged in few sweeps" true
    (lv.Dataflow.lv_iterations <= 4 * n_blocks);
  (* s and i are live around the back edge: the loop header's entry set
     is non-empty *)
  let header_live =
    List.exists
      (fun b -> not (Dataflow.Int_set.is_empty (lv.Dataflow.lv_entry b)))
      cfg.Cfg.rpo
  in
  Alcotest.(check bool) "loop-carried slots are live somewhere" true
    header_live

(* ---- uninit -------------------------------------------------------------- *)

let test_uninit_true_positive () =
  let report =
    analyze ~passes:[ "uninit" ]
      "long f(long n) {\n  long x;\n  if (n > 0) x = n;\n  return x + 1;\n}\n\
       int main(void) { return 0; }"
  in
  match findings_of_pass report "uninit" with
  | [ f ] ->
    Alcotest.(check bool) "names the variable" true
      (contains_substring f.Report.f_msg "'x'")
  | fs -> Alcotest.failf "expected exactly 1 uninit finding, got %d"
            (List.length fs)

(* Both arms of the diamond initialize: the kill-on-store reaching-defs
   must not cry wolf at the join. *)
let test_uninit_false_positive_guard () =
  let report =
    analyze ~passes:[ "uninit" ]
      "long f(long n) {\n  long x;\n  if (n > 0) x = n; else x = 0;\n\
      \  return x + 1;\n}\nint main(void) { return 0; }"
  in
  Alcotest.(check int) "no finding when every path initializes" 0
    (List.length (findings_of_pass report "uninit"))

(* ---- leak ---------------------------------------------------------------- *)

let leaky =
  "long *malloc(long n);\nvoid free(long *p);\n\
   long f(long n) {\n  long *p = malloc(8 * n);\n\
  \  if (n > 64) return -1;\n  free(p);\n  return 0;\n}\n\
   int main(void) { return 0; }"

let test_leak_on_early_return () =
  let report = analyze ~passes:[ "leak" ] leaky in
  match findings_of_pass report "leak" with
  | [ f ] ->
    Alcotest.(check bool) "names the holder" true
      (contains_substring f.Report.f_msg "'p'")
  | fs ->
    Alcotest.failf "expected exactly 1 leak finding, got %d" (List.length fs)

let test_no_leak_when_all_paths_release () =
  let report =
    analyze ~passes:[ "leak" ]
      "long *malloc(long n);\nvoid free(long *p);\n\
       long f(long n) {\n  long *p = malloc(8 * n);\n\
      \  if (n > 64) { free(p); return -1; }\n  free(p);\n  return 0;\n}\n\
       int main(void) { return 0; }"
  in
  Alcotest.(check int) "no finding when every path releases" 0
    (List.length (findings_of_pass report "leak"))

(* ---- unreachable --------------------------------------------------------- *)

let test_unreachable_after_return () =
  let report =
    analyze ~passes:[ "unreachable" ]
      "long f(long v) {\n  return v;\n  v = 0;\n  return v;\n}\n\
       int main(void) { return 0; }"
  in
  Alcotest.(check bool) "statements after return are reported" true
    (List.length (findings_of_pass report "unreachable") >= 1)

let test_reachable_code_is_silent () =
  let report =
    analyze ~passes:[ "unreachable" ]
      "long f(long v) {\n  if (v > 0) return v;\n  return 0 - v;\n}\n\
       int main(void) { return 0; }"
  in
  Alcotest.(check int) "no finding on fully reachable code" 0
    (List.length (findings_of_pass report "unreachable"))

(* ---- dependence verdicts ------------------------------------------------- *)

let test_deps_known_safe () =
  let report =
    analyze ~passes:[ "deps" ]
      "long elem(long n) {\n  long A[64];\n  long B[64];\n\
      \  for (long i = 0; i < 64; i += 1) B[i] = i;\n\
      \  for (long i = 0; i < 64; i += 1) A[i] = B[i] + 1;\n\
      \  return A[5];\n}\n\
       long red(long n) {\n  long s = 0;\n\
      \  for (long i = 0; i < n; i += 1) s = s + i;\n  return s;\n}\n\
       void nest(void) {\n  long C[100];\n\
      \  for (long i = 0; i < 10; i += 1)\n\
      \    for (long j = 0; j < 10; j += 1)\n      C[i * 10 + j] = i + j;\n}\n\
       int main(void) { return 0; }"
  in
  check_verdict "element-wise copy reverses safely" Report.Safe report
    ~func:"elem" ~directive:"reverse";
  check_verdict "reduction fuses safely" Report.Safe report ~func:"red"
    ~directive:"fuse";
  check_verdict "reduction reverses safely" Report.Safe report ~func:"red"
    ~directive:"reverse";
  check_verdict "perfect nest interchanges safely" Report.Safe report
    ~func:"nest" ~directive:"interchange";
  check_verdict "perfect nest tiles safely" Report.Safe report ~func:"nest"
    ~directive:"tile"

let test_deps_known_unsafe () =
  let report =
    analyze ~passes:[ "deps" ]
      "void shift(long n) {\n  long A[100];\n\
      \  for (long i = 1; i < n; i += 1) A[i] = A[i - 1] + 1;\n}\n\
       void lastidx(long n) {\n  long A[4];\n\
      \  for (long i = 0; i < n; i += 1) A[0] = i;\n}\n\
       int main(void) { return 0; }"
  in
  check_verdict "carried distance-1 dependence blocks reverse" Report.Unsafe
    report ~func:"shift" ~directive:"reverse";
  (* the distance witness is located *)
  let shift_loop =
    List.find
      (fun (lr : Report.loop_report) -> lr.Report.lr_func = "shift")
      (Report.loops report)
  in
  Alcotest.(check bool) "witness note names the array" true
    (List.exists
       (fun (n : Report.note) -> contains_substring n.Report.n_msg "'A'")
       shift_loop.Report.lr_notes);
  (* a loop-invariant non-reduction store is never declared safe *)
  let v = verdict_of report ~func:"lastidx" ~directive:"reverse" in
  Alcotest.(check bool) "invariant store is not safe to reverse" true
    (v <> Report.Safe);
  (* unroll preserves iteration order — safe even for shift *)
  check_verdict "unroll stays safe under carried deps" Report.Safe report
    ~func:"shift" ~directive:"unroll"

let test_non_canonical_loop_is_unknown () =
  let report =
    analyze ~passes:[ "deps" ]
      "long f(long n) {\n  long s = 0;\n  long i = 0;\n\
      \  while (i < n) { s = s + i; i = i + (s > 10 ? 2 : 1); }\n\
      \  return s;\n}\nint main(void) { return 0; }"
  in
  List.iter
    (fun (lr : Report.loop_report) ->
      List.iter
        (fun (dv : Report.directive_verdict) ->
          if dv.Report.dv_verdict = Report.Unsafe then
            Alcotest.failf "non-canonical loop drew an unsafe '%s' verdict"
              dv.Report.dv_directive)
        lr.Report.lr_directives)
    (Report.loops report)

(* ---- pass selection ------------------------------------------------------ *)

let test_pass_selection () =
  let report = analyze ~passes:[ "uninit"; "deps" ] leaky in
  Alcotest.(check (list string)) "selection is honoured, order kept"
    [ "uninit"; "deps" ] report.Report.r_passes;
  Alcotest.(check int) "unselected leak pass stayed off" 0
    (List.length (findings_of_pass report "leak"));
  let all = Analyzer.normalize_passes None in
  Alcotest.(check (list string)) "default selection is every pass"
    [ "uninit"; "unreachable"; "leak"; "deps" ] all;
  Alcotest.(check (list string)) "unknown names are dropped, dupes folded"
    [ "deps"; "uninit" ]
    (Analyzer.normalize_passes (Some [ "deps"; "nope"; "uninit"; "deps" ]))

(* ---- warm-cache report identity ------------------------------------------ *)

let analyzing_invocation =
  {
    Invocation.default with
    Invocation.cache_enabled = true;
    analyze = Some [];
  }

let report_of (c : Instance.compilation) =
  match c.Instance.c_result.Driver.analysis with
  | Some r -> r
  | None -> Alcotest.fail "compilation carried no analysis report"

let test_warm_cache_report_identity () =
  let source = leaky in
  let inst = Instance.create analyzing_invocation in
  let cold = Instance.compile inst source in
  let warm = Instance.compile inst source in
  Alcotest.(check string) "cold and warm text reports are byte-identical"
    (Report.render_text (report_of cold))
    (Report.render_text (report_of warm));
  Alcotest.(check string) "and the JSON reports too"
    (Report.render_json (report_of cold))
    (Report.render_json (report_of warm))

(* A body edit re-analyzes exactly the edited function: the per-function
   analysis stage rides the fnir fingerprints, so the sibling fragments
   are adopted from the cache. *)
let unit_with ~edit =
  Printf.sprintf
    "long w0(long n) { long a = 0; for (long i = 0; i < n; i += 1) a = a + \
     i; return a; }\n\
     long w1(long n) { long a = %d; for (long i = 0; i < n; i += 1) a = a + \
     i * 3; return a; }\n\
     long w2(long n) { long a = 2; for (long i = 0; i < n; i += 1) a = a + \
     i - n; return a; }\n\
     int main(void) { return 0; }\n"
    edit

let test_body_edit_reanalyzes_one_function () =
  let inst = Instance.create analyzing_invocation in
  let cold = Instance.compile inst (unit_with ~edit:3) in
  (* length-preserving edit: sibling source spans (and so their rendered
     locations) stay put *)
  let warm = Instance.compile inst (unit_with ~edit:9) in
  let counter name =
    try Stats.find warm.Instance.c_result.Driver.stats name
    with Not_found -> 0
  in
  let hits = counter "analysis.fn-hits"
  and misses = counter "analysis.fn-misses" in
  Alcotest.(check int) "three sibling fragments adopted" 3 hits;
  Alcotest.(check int) "exactly the edited function re-analyzed" 1 misses;
  (* and the stitched report equals a cold analysis of the edited unit *)
  let fresh = Instance.create analyzing_invocation in
  let cold_edited = Instance.compile fresh (unit_with ~edit:9) in
  Alcotest.(check string) "stitched report = cold report"
    (Report.render_text (report_of cold_edited))
    (Report.render_text (report_of warm));
  ignore cold

let suite =
  [
    Alcotest.test_case "engine: diamond converges in one sweep" `Quick
      test_engine_diamond_converges;
    Alcotest.test_case "engine: loop converges with a re-visit" `Quick
      test_engine_loop_converges;
    Alcotest.test_case "uninit: partial initialization is found" `Quick
      test_uninit_true_positive;
    Alcotest.test_case "uninit: full initialization is silent" `Quick
      test_uninit_false_positive_guard;
    Alcotest.test_case "leak: early return path is found" `Quick
      test_leak_on_early_return;
    Alcotest.test_case "leak: all-paths release is silent" `Quick
      test_no_leak_when_all_paths_release;
    Alcotest.test_case "unreachable: code after return is found" `Quick
      test_unreachable_after_return;
    Alcotest.test_case "unreachable: live code is silent" `Quick
      test_reachable_code_is_silent;
    Alcotest.test_case "deps: known-safe loops get safe verdicts" `Quick
      test_deps_known_safe;
    Alcotest.test_case "deps: known-unsafe loops never get safe verdicts"
      `Quick test_deps_known_unsafe;
    Alcotest.test_case "deps: non-canonical loops stay unknown" `Quick
      test_non_canonical_loop_is_unknown;
    Alcotest.test_case "pass selection and normalization" `Quick
      test_pass_selection;
    Alcotest.test_case "cache: warm report is byte-identical" `Quick
      test_warm_cache_report_identity;
    Alcotest.test_case "cache: body edit re-analyzes one function" `Quick
      test_body_edit_reanalyzes_one_function;
  ]
