(* Compile-server suite: warm round-trips through a live daemon on a
   spare domain, ICE containment, digest-mismatch rejection, load
   shedding with client retry, per-request deadlines, injected faults
   (torn frames, worker crashes), Bqueue edge cases, stale-socket
   takeover, and the client's unreachable-daemon error path. *)

open Helpers
module Server = Mc_core.Server
module Client = Mc_core.Client
module Protocol = Mc_core.Protocol
module Pipeline = Mc_core.Pipeline
module Invocation = Mc_core.Invocation
module Stats = Mc_support.Stats
module Fault = Mc_support.Fault

let source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let ice_source = "int main(void) {\n#pragma clang __debug crash\nreturn 0; }"

(* Reproducer bundles from contained ICEs are not wanted in the test
   environment. *)
let invocation =
  { Invocation.default with Invocation.gen_reproducer = false }

let fresh_socket () =
  let path = Filename.temp_file "mccd-test" ".sock" in
  Sys.remove path;
  path

(* When the suite runs under an env-armed fault matrix (MCC_FAULTS),
   injected failures — torn frames, synthetic worker crashes — are
   expected outcomes: round-trips are re-rolled a bounded number of
   times and only clean passes are asserted on, while exact counter and
   cache-trace expectations (which re-rolls perturb) are relaxed.
   Correctness invariants — no wrong data, no hangs, no daemon deaths —
   are never relaxed.  With MCC_FAULTS unset every helper is a single
   attempt and any failure is fatal, exactly as before. *)
let tolerant = Sys.getenv_opt "MCC_FAULTS" <> None

let has_substring s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let rec retrying ?(tries = 40) f =
  match f () with
  | Ok v -> v
  | Error msg ->
    if tolerant && tries > 0 then begin
      Unix.sleepf 0.01;
      retrying ~tries:(tries - 1) f
    end
    else Alcotest.failf "%s" msg

(* Exact lifetime-counter expectations only hold when no fault matrix
   is re-rolling requests underneath us; under faults the counters are
   still monotone, so a floor remains checkable. *)
let check_count name expected actual =
  if tolerant then
    Alcotest.(check bool) (name ^ " (floor under faults)") true
      (actual >= expected)
  else Alcotest.(check int) name expected actual

let check_flag name expected actual =
  if not tolerant then Alcotest.(check bool) name expected actual

let check_trace name expected actual =
  if not tolerant then Alcotest.(check string) name expected actual

(* Starts a daemon on a spare domain, runs [f socket_path], then stops
   the daemon and returns [f]'s result with the lifetime snapshot. *)
let with_daemon ?(pool = 1) ?(queue = 8) ?request_timeout f =
  let socket_path = fresh_socket () in
  let stop = Atomic.make false in
  let config =
    {
      Server.default_config with
      Server.socket_path;
      pool_size = pool;
      queue_capacity = queue;
      request_timeout;
      (* Safety net: the test never relies on it, but a wedged daemon
         must not hang the suite forever. *)
      idle_timeout = Some 60.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.run ~stop config) in
  (* Wait for the listening socket, then for a successful round-trip. *)
  let rec await n =
    if n = 0 then Alcotest.fail "daemon socket never appeared";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.02;
      await (n - 1)
    end
  in
  await 250;
  let result =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () -> f socket_path)
  in
  match Domain.join server with
  | Ok snapshot ->
    Alcotest.(check bool) "socket removed on shutdown" false
      (Sys.file_exists socket_path);
    (result, snapshot)
  | Error e -> Alcotest.failf "server failed: %s" e

(* A compile round-trip that must end in [Resp_units] with no injected
   worker crash; under the fault matrix, injected outcomes re-roll. *)
let compile_units ?policy ~socket_path inv units =
  retrying (fun () ->
      match Client.compile ?policy ~socket_path inv units with
      | Error e -> Error ("round-trip failed: " ^ e)
      | Ok { Client.response = Protocol.Resp_units { p_units; _ }; _ } ->
        let injected (u : Protocol.response_unit) =
          match u.Protocol.r_outcome with
          | Protocol.R_ice { ice_exn; _ } -> has_substring ice_exn "injected"
          | Protocol.R_ok _ -> false
        in
        if tolerant && List.exists injected p_units then
          Error "injected worker fault; re-rolling"
        else Ok p_units
      | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
        Error ("request rejected: " ^ reason)
      | Ok _ -> Error "unexpected response shape")

let compile_unit ?policy ~socket_path inv units =
  match compile_units ?policy ~socket_path inv units with
  | [ u ] -> u
  | us -> Alcotest.failf "expected one response unit, got %d" (List.length us)

let ir_text u =
  match Client.ir_of_response_unit u with
  | Some m -> Mc_ir.Printer.module_to_string m
  | None -> Alcotest.fail "response carried no decodable IR"

let test_warm_roundtrip () =
  let (), snap =
    with_daemon (fun socket_path ->
        let compile () =
          compile_unit ~socket_path invocation [ ("a.c", source) ]
        in
        let cold = compile () in
        (match cold.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "cold has no errors" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "cold compile ICEd");
        check_flag "cold is a miss" false cold.Protocol.r_cache_hit;
        let warm = compile () in
        check_flag "warm is a full hit" true warm.Protocol.r_cache_hit;
        check_trace "warm reuses every stage"
          "lex:hit pp:hit ast:hit ir:hit optir:hit"
          (Pipeline.render_trace warm.Protocol.r_trace);
        Alcotest.(check string) "byte-identical IR across the wire"
          (ir_text cold) (ir_text warm))
  in
  check_count "server.requests" 2 (Stats.find snap "server.requests");
  check_count "server.units" 2 (Stats.find snap "server.units");
  check_count "server.ices" 0 (Stats.find snap "server.ices")

let test_ice_contained () =
  let (), snap =
    with_daemon (fun socket_path ->
        let ice =
          compile_unit ~socket_path invocation [ ("boom.c", ice_source) ]
        in
        (match ice.Protocol.r_outcome with
        | Protocol.R_ice { ice_phase; ice_exn; _ } ->
          Alcotest.(check bool) "phase reported" true (ice_phase <> "");
          Alcotest.(check bool) "exception reported" true (ice_exn <> "")
        | Protocol.R_ok _ -> Alcotest.fail "expected an R_ice outcome");
        (* The crash was contained in the worker: the daemon keeps
           serving, and its cache is intact. *)
        let after =
          compile_unit ~socket_path invocation [ ("a.c", source) ]
        in
        match after.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "daemon still compiles" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "daemon poisoned by earlier ICE")
  in
  check_count "server.ices" 1 (Stats.find snap "server.ices");
  check_count "server.requests" 2 (Stats.find snap "server.requests")

let test_digest_mismatch_rejected () =
  let (), snap =
    with_daemon (fun socket_path ->
        let forged =
          match Protocol.request_of_units invocation [ ("a.c", source) ] with
          | Protocol.Req_compile c ->
            Protocol.Req_compile
              {
                c with
                Protocol.q_units =
                  List.map
                    (fun u -> { u with Protocol.q_digest = String.make 32 '0' })
                    c.Protocol.q_units;
              }
          | Protocol.Req_transform _ | Protocol.Req_analyze _
          | Protocol.Req_ping ->
            Alcotest.fail "request_of_units built a non-compile request"
        in
        let reason =
          retrying (fun () ->
              match Client.roundtrip ~socket_path forged with
              | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
                Ok reason
              | Ok _ -> Alcotest.fail "forged digest was accepted"
              | Error e -> Error ("round-trip failed: " ^ e))
        in
        check_contains ~what:"rejection reason" reason "digest";
        (* A rejection must not wedge the daemon either. *)
        let after =
          compile_unit ~socket_path invocation [ ("a.c", source) ]
        in
        check_flag "daemon serves after a rejection" false
          after.Protocol.r_cache_hit)
  in
  check_count "server.rejects" 1 (Stats.find snap "server.rejects")

(* The v2 transform request: the daemon applies the invocation's transfo
   script and returns the rewritten source, caching the transfo stage. *)
let test_transform_request () =
  let (), snap =
    with_daemon (fun socket_path ->
        let inv =
          {
            invocation with
            Invocation.transfo_script =
              Some
                (Invocation.Source
                   {
                     name = "s.transfo";
                     contents = "unroll partial(2) @ for(i)";
                   });
          }
        in
        let once () =
          retrying (fun () ->
              match Client.transform ~socket_path inv ~name:"a.c" source with
              | Ok
                  {
                    Client.response =
                      Protocol.Resp_transformed { p_result = Ok t; _ };
                    _;
                  } ->
                Ok t
              | Ok
                  {
                    Client.response =
                      Protocol.Resp_transformed { p_result = Error e; _ };
                    _;
                  } ->
                Alcotest.failf "script failed: %s" e
              | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
                Error ("request rejected: " ^ reason)
              | Ok _ -> Error "unexpected response shape"
              | Error e -> Error ("round-trip failed: " ^ e))
        in
        let cold = once () in
        check_contains ~what:"rewritten source" cold.Protocol.x_source
          "#pragma omp unroll partial(2)";
        check_flag "cold is a miss" false cold.Protocol.x_cache_hit;
        let warm = once () in
        check_flag "warm hits the transfo cache" true warm.Protocol.x_cache_hit;
        Alcotest.(check string) "identical rewrite across the wire"
          cold.Protocol.x_source warm.Protocol.x_source;
        (* A bad script is a payload error, not a rejection. *)
        let bad =
          {
            invocation with
            Invocation.transfo_script =
              Some
                (Invocation.Source
                   { name = "s.transfo"; contents = "unroll @ for(nope)" });
          }
        in
        let failure =
          retrying (fun () ->
              match Client.transform ~socket_path bad ~name:"a.c" source with
              | Ok
                  {
                    Client.response =
                      Protocol.Resp_transformed { p_result = Error e; _ };
                    _;
                  } ->
                Ok e
              | Ok
                  {
                    Client.response =
                      Protocol.Resp_transformed { p_result = Ok _; _ };
                    _;
                  } ->
                Alcotest.fail "bad script did not fail"
              | Ok { Client.response = Protocol.Resp_rejected reason; _ } ->
                Error ("request rejected: " ^ reason)
              | Ok _ -> Error "unexpected response shape"
              | Error e -> Error ("round-trip failed: " ^ e))
        in
        check_contains ~what:"script failure" failure "matched no statement")
  in
  check_count "server.transforms" 3 (Stats.find snap "server.transforms")

let test_unreachable_socket () =
  let path = fresh_socket () in
  match Client.compile ~socket_path:path invocation [ ("a.c", source) ] with
  | Error msg -> check_contains ~what:"client error" msg "cannot reach daemon"
  | Ok _ -> Alcotest.fail "expected an error for a dead socket"

let test_double_start_refused () =
  let (), _ =
    with_daemon (fun socket_path ->
        let config = { Server.default_config with Server.socket_path } in
        match Server.run config with
        | Error msg -> check_contains ~what:"second daemon" msg "already"
        | Ok _ -> Alcotest.fail "second daemon bound the same live socket")
  in
  ()

(* ---- protocol v3: ping ---------------------------------------------- *)

let test_ping () =
  let (), snap =
    with_daemon (fun socket_path ->
        let depth, cap =
          retrying (fun () ->
              match Client.ping ~socket_path () with
              | Ok v -> Ok v
              | Error e -> Error ("ping failed: " ^ e))
        in
        Alcotest.(check int) "advertised capacity" 8 cap;
        Alcotest.(check bool) "sane queue depth" true
          (depth >= 0 && depth <= cap))
  in
  check_count "server.pings" 1 (Stats.find snap "server.pings")

(* ---- admission control: shedding and client retry ------------------- *)

(* Pool of 1, queue of 1, and a worker that sleeps on every request
   (armed [server.slow_reply]): with one request in the worker and one
   in the queue, a third connection must be shed with [Resp_busy] —
   a retries=0 client surfaces that as a "busy" error, while a client
   with retries absorbs the sheds and is eventually served. *)
let test_shed_and_busy_retry () =
  let (), snap =
    Fault.with_armed
      [ ("server.slow_reply", 1.0, 7) ]
      (fun () ->
        with_daemon ~pool:1 ~queue:1 (fun socket_path ->
            let occupy name =
              Domain.spawn (fun () ->
                  Client.compile ~socket_path invocation [ (name, source) ])
            in
            let a = occupy "shed-a.c" in
            Unix.sleepf 0.1 (* a is in the worker, sleeping *);
            let b = occupy "shed-b.c" in
            Unix.sleepf 0.1 (* b fills the queue *);
            let impatient =
              { Client.default_policy with Client.retries = 0 }
            in
            (match
               Client.compile ~policy:impatient ~socket_path invocation
                 [ ("shed-c.c", source) ]
             with
            | Error msg ->
              if not tolerant then
                check_contains ~what:"shed error" msg "busy"
            | Ok _ ->
              if not tolerant then
                Alcotest.fail "expected a busy error with retries = 0");
            let patient =
              {
                Client.default_policy with
                Client.retries = 25;
                backoff = 0.05;
                backoff_max = 0.2;
              }
            in
            (match
               Client.compile ~policy:patient ~socket_path invocation
                 [ ("shed-d.c", source) ]
             with
            | Ok { Client.response = Protocol.Resp_units _; busy_retries } ->
              if not tolerant then begin
                Alcotest.(check bool) "absorbed at least one shed" true
                  (busy_retries >= 1);
                match
                  Client.outcome_of_reply
                    {
                      Client.response =
                        Protocol.Resp_rejected "shape only";
                      busy_retries;
                    }
                with
                | Client.Shed_then_served n ->
                  Alcotest.(check int) "outcome carries the retry count"
                    busy_retries n
                | Client.Served | Client.Fell_back _ ->
                  Alcotest.fail "expected a Shed_then_served outcome"
              end
            | Ok _ ->
              if not tolerant then Alcotest.fail "unexpected response shape"
            | Error e ->
              if not tolerant then
                Alcotest.failf "retrying client failed: %s" e);
            (* No hangs: the occupied clients both terminate. *)
            ignore (Domain.join a);
            ignore (Domain.join b)))
  in
  if not tolerant then begin
    Alcotest.(check bool) "server.shed counted" true
      (Stats.find snap "server.shed" >= 1);
    Alcotest.(check bool) "queue high-water mark recorded" true
      (Stats.find snap "server.queue-depth-max" >= 1)
  end

(* ---- per-request deadline ------------------------------------------- *)

let test_request_deadline () =
  let (), snap =
    Fault.with_armed
      [ ("server.slow_reply", 1.0, 11) ]
      (fun () ->
        with_daemon ~request_timeout:0.05 (fun socket_path ->
            let reason =
              retrying (fun () ->
                  match
                    Client.compile ~socket_path invocation
                      [ ("slow.c", source) ]
                  with
                  | Ok { Client.response = Protocol.Resp_rejected reason; _ }
                    ->
                    Ok reason
                  | Ok _ -> Error "expected a deadline rejection"
                  | Error e -> Error ("round-trip failed: " ^ e))
            in
            check_contains ~what:"timeout reason" reason "deadline";
            check_contains ~what:"timeout tells the client what to do" reason
              "compile locally"))
  in
  check_count "server.timeouts" 1 (Stats.find snap "server.timeouts")

(* ---- client deadlines against a wedged server ----------------------- *)

(* A fake daemon that accepts connections and then neither reads nor
   replies: without SO_SNDTIMEO a large request write blocks forever
   once the socket buffers fill, and without SO_RCVTIMEO the response
   read does.  The client policy must bound both. *)
let test_wedged_server_times_out () =
  let socket_path = fresh_socket () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 8;
  let stop = Atomic.make false in
  let acceptor =
    Domain.spawn (fun () ->
        let accepted = ref [] in
        (try
           while not (Atomic.get stop) do
             match Unix.select [ listen_fd ] [] [] 0.05 with
             | _ :: _, _, _ ->
               let c, _ = Unix.accept listen_fd in
               accepted := c :: !accepted
             | _ -> ()
           done
         with _ -> ());
        List.iter
          (fun c -> try Unix.close c with Unix.Unix_error _ -> ())
          !accepted)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join acceptor);
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Sys.remove socket_path with Sys_error _ -> ())
    (fun () ->
      (* Big enough to overflow any Unix-socket buffer, so the write
         itself must hit SO_SNDTIMEO. *)
      let big =
        "int main(void){return 0;}\n/*" ^ String.make (8 * 1024 * 1024) 'x'
        ^ "*/"
      in
      let policy = Client.policy_with ~timeout:0.2 ~retries:0 () in
      let started = Unix.gettimeofday () in
      (match
         Client.compile ~policy ~socket_path invocation [ ("big.c", big) ]
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "a wedged server produced a response");
      let elapsed = Unix.gettimeofday () -. started in
      Alcotest.(check bool)
        (Printf.sprintf "deadlines bounded the round-trip (%.2fs)" elapsed)
        true (elapsed < 5.0))

(* ---- fault injection through the daemon ----------------------------- *)

(* A torn request frame (armed [protocol.write_frame]) must surface as a
   client error, never a hang — and the daemon must keep serving once
   the fault is disarmed. *)
let test_torn_frame_contained () =
  let (), _snap =
    with_daemon (fun socket_path ->
        let torn_point = Fault.point "protocol.write_frame" in
        let trips_before = Fault.trips torn_point in
        Fault.with_armed
          [ ("protocol.write_frame", 1.0, 3) ]
          (fun () ->
            let impatient =
              { Client.default_policy with Client.retries = 0 }
            in
            match
              Client.compile ~policy:impatient ~socket_path invocation
                [ ("torn.c", source) ]
            with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "a torn request frame produced a reply");
        Alcotest.(check bool) "fault trip counted" true
          (Fault.trips torn_point > trips_before);
        (* Disarmed again: the truncated frame did not kill the worker. *)
        let after = compile_unit ~socket_path invocation [ ("a.c", source) ] in
        match after.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "daemon survives a torn frame" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "daemon poisoned by a torn frame")
  in
  ()

(* An injected worker crash is contained exactly like a real ICE: a
   structured [R_ice] response entry, daemon alive. *)
let test_worker_fault_becomes_ice () =
  let (), snap =
    with_daemon (fun socket_path ->
        Fault.with_armed
          [ ("server.worker", 1.0, 9) ]
          (fun () ->
            let u =
              retrying (fun () ->
                  match
                    Client.compile ~socket_path invocation
                      [ ("wf.c", source) ]
                  with
                  | Ok
                      {
                        Client.response =
                          Protocol.Resp_units { p_units = [ u ]; _ };
                        _;
                      } ->
                    Ok u
                  | Ok _ -> Error "unexpected response shape"
                  | Error e -> Error ("round-trip failed: " ^ e))
            in
            match u.Protocol.r_outcome with
            | Protocol.R_ice { ice_phase; ice_exn; _ } ->
              check_contains ~what:"injected phase" ice_phase "server.worker";
              check_contains ~what:"injected exception" ice_exn "injected"
            | Protocol.R_ok _ ->
              Alcotest.fail "armed worker fault did not surface as R_ice");
        (* Disarmed: the same daemon compiles cleanly. *)
        let after = compile_unit ~socket_path invocation [ ("a.c", source) ] in
        match after.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "daemon recovered" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "daemon stuck in fault mode")
  in
  Alcotest.(check bool) "injected ICE counted" true
    (Stats.find snap "server.ices" >= 1)

(* ---- Bqueue edge cases ---------------------------------------------- *)

let test_bqueue_capacity_one () =
  let q = Server.Bqueue.create 1 in
  Alcotest.(check bool) "push into empty" true (Server.Bqueue.push q 1);
  (match Server.Bqueue.try_push q 2 with
  | `Full -> ()
  | `Accepted | `Closed ->
    Alcotest.fail "capacity-1 queue accepted a second element");
  Alcotest.(check int) "length at capacity" 1 (Server.Bqueue.length q);
  (match Server.Bqueue.pop q with
  | Some 1 -> ()
  | Some _ | None -> Alcotest.fail "pop returned the wrong element");
  (match Server.Bqueue.try_push q 3 with
  | `Accepted -> ()
  | `Full | `Closed -> Alcotest.fail "drained queue refused an element");
  Server.Bqueue.close q;
  (match Server.Bqueue.pop q with
  | Some 3 -> ()
  | Some _ | None -> Alcotest.fail "close dropped a queued element");
  match Server.Bqueue.pop q with
  | None -> ()
  | Some _ -> Alcotest.fail "closed empty queue still popped"

let test_bqueue_push_after_close () =
  let q = Server.Bqueue.create 4 in
  Server.Bqueue.close q;
  Alcotest.(check bool) "push after close refused" false
    (Server.Bqueue.push q 1);
  (match Server.Bqueue.try_push q 1 with
  | `Closed -> ()
  | `Accepted | `Full -> Alcotest.fail "try_push after close not `Closed");
  match Server.Bqueue.pop q with
  | None -> ()
  | Some _ -> Alcotest.fail "closed queue popped a phantom element"

(* Two domains racing pop during a drain: every element is delivered
   exactly once, both poppers terminate with [None]. *)
let test_bqueue_drain_race () =
  let q = Server.Bqueue.create 8 in
  for i = 1 to 8 do
    ignore (Server.Bqueue.push q i)
  done;
  Server.Bqueue.close q;
  let popper () =
    Domain.spawn (fun () ->
        let rec go acc =
          match Server.Bqueue.pop q with
          | Some v -> go (v :: acc)
          | None -> acc
        in
        go [])
  in
  let a = popper () in
  let b = popper () in
  let got = List.sort compare (Domain.join a @ Domain.join b) in
  Alcotest.(check (list int)) "drained exactly once each"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    got

(* ---- stale-socket takeover ------------------------------------------ *)

(* A listener that dies without unlinking its socket (a crashed daemon):
   while it lives, [Server.run] must refuse the path; once it is gone,
   the stale file must be detected, removed, and taken over. *)
let test_stale_socket_takeover () =
  let socket_path = fresh_socket () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 1;
  let config =
    {
      Server.default_config with
      Server.socket_path;
      pool_size = 1;
      idle_timeout = Some 1.0;
    }
  in
  (match Server.run config with
  | Error msg -> check_contains ~what:"live listener refusal" msg "already"
  | Ok _ -> Alcotest.fail "bound over a live listener");
  (* The listener dies mid-takeover story: socket file left behind. *)
  Unix.close listen_fd;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists socket_path);
  let stop = Atomic.make true in
  (match Server.run ~stop config with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "takeover of a stale socket failed: %s" e);
  Alcotest.(check bool) "stale socket removed by takeover" false
    (Sys.file_exists socket_path)

let suite =
  [
    tc "warm round-trip is a full hit" test_warm_roundtrip;
    tc "ICE is contained, daemon survives" test_ice_contained;
    tc "digest mismatch is rejected" test_digest_mismatch_rejected;
    tc "transform request round-trips and caches" test_transform_request;
    tc "unreachable socket is a client error" test_unreachable_socket;
    tc "second daemon on a live socket is refused" test_double_start_refused;
    tc "ping reports queue depth and capacity" test_ping;
    tc "full queue sheds; client retries absorb it" test_shed_and_busy_retry;
    tc "request deadline becomes a structured rejection"
      test_request_deadline;
    tc "client deadlines bound a wedged server" test_wedged_server_times_out;
    tc "torn frame is contained" test_torn_frame_contained;
    tc "injected worker fault is a contained ICE"
      test_worker_fault_becomes_ice;
    tc "Bqueue: capacity-1 edge" test_bqueue_capacity_one;
    tc "Bqueue: push after close" test_bqueue_push_after_close;
    tc "Bqueue: pop race during drain" test_bqueue_drain_race;
    tc "stale socket takeover" test_stale_socket_takeover;
  ]
