(* Compile-server suite: warm round-trips through a live daemon on a
   spare domain, ICE containment, digest-mismatch rejection, and the
   client's unreachable-daemon error path. *)

open Helpers
module Server = Mc_core.Server
module Client = Mc_core.Client
module Protocol = Mc_core.Protocol
module Pipeline = Mc_core.Pipeline
module Invocation = Mc_core.Invocation
module Stats = Mc_support.Stats

let source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let ice_source = "int main(void) {\n#pragma clang __debug crash\nreturn 0; }"

(* Reproducer bundles from contained ICEs are not wanted in the test
   environment. *)
let invocation =
  { Invocation.default with Invocation.gen_reproducer = false }

let fresh_socket () =
  let path = Filename.temp_file "mccd-test" ".sock" in
  Sys.remove path;
  path

(* Starts a daemon on a spare domain, runs [f socket_path], then stops
   the daemon and returns [f]'s result with the lifetime snapshot. *)
let with_daemon f =
  let socket_path = fresh_socket () in
  let stop = Atomic.make false in
  let config =
    {
      Server.default_config with
      Server.socket_path;
      pool_size = 1;
      queue_capacity = 8;
      (* Safety net: the test never relies on it, but a wedged daemon
         must not hang the suite forever. *)
      idle_timeout = Some 60.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.run ~stop config) in
  (* Wait for the listening socket, then for a successful round-trip. *)
  let rec await n =
    if n = 0 then Alcotest.fail "daemon socket never appeared";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.02;
      await (n - 1)
    end
  in
  await 250;
  let result =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () -> f socket_path)
  in
  match Domain.join server with
  | Ok snapshot ->
    Alcotest.(check bool) "socket removed on shutdown" false
      (Sys.file_exists socket_path);
    (result, snapshot)
  | Error e -> Alcotest.failf "server failed: %s" e

let expect_units = function
  | Ok (Protocol.Resp_units { p_units; _ }) -> p_units
  | Ok (Protocol.Resp_transformed _) ->
    Alcotest.fail "unexpected transform response to a compile request"
  | Ok (Protocol.Resp_rejected reason) ->
    Alcotest.failf "request rejected: %s" reason
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let expect_unit resp =
  match expect_units resp with
  | [ u ] -> u
  | us -> Alcotest.failf "expected one response unit, got %d" (List.length us)

let ir_text u =
  match Client.ir_of_response_unit u with
  | Some m -> Mc_ir.Printer.module_to_string m
  | None -> Alcotest.fail "response carried no decodable IR"

let test_warm_roundtrip () =
  let (), snap =
    with_daemon (fun socket_path ->
        let compile () =
          expect_unit (Client.compile ~socket_path invocation [ ("a.c", source) ])
        in
        let cold = compile () in
        (match cold.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "cold has no errors" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "cold compile ICEd");
        Alcotest.(check bool) "cold is a miss" false cold.Protocol.r_cache_hit;
        let warm = compile () in
        Alcotest.(check bool) "warm is a full hit" true
          warm.Protocol.r_cache_hit;
        Alcotest.(check string) "warm reuses every stage"
          "lex:hit pp:hit ast:hit ir:hit optir:hit"
          (Pipeline.render_trace warm.Protocol.r_trace);
        Alcotest.(check string) "byte-identical IR across the wire"
          (ir_text cold) (ir_text warm))
  in
  Alcotest.(check int) "server.requests" 2 (Stats.find snap "server.requests");
  Alcotest.(check int) "server.units" 2 (Stats.find snap "server.units");
  Alcotest.(check int) "server.ices" 0 (Stats.find snap "server.ices")

let test_ice_contained () =
  let (), snap =
    with_daemon (fun socket_path ->
        let ice =
          expect_unit
            (Client.compile ~socket_path invocation [ ("boom.c", ice_source) ])
        in
        (match ice.Protocol.r_outcome with
        | Protocol.R_ice { ice_phase; ice_exn; _ } ->
          Alcotest.(check bool) "phase reported" true (ice_phase <> "");
          Alcotest.(check bool) "exception reported" true (ice_exn <> "")
        | Protocol.R_ok _ -> Alcotest.fail "expected an R_ice outcome");
        (* The crash was contained in the worker: the daemon keeps
           serving, and its cache is intact. *)
        let after =
          expect_unit (Client.compile ~socket_path invocation [ ("a.c", source) ])
        in
        match after.Protocol.r_outcome with
        | Protocol.R_ok { ok_errors; _ } ->
          Alcotest.(check bool) "daemon still compiles" false ok_errors
        | Protocol.R_ice _ -> Alcotest.fail "daemon poisoned by earlier ICE")
  in
  Alcotest.(check int) "server.ices" 1 (Stats.find snap "server.ices");
  Alcotest.(check int) "server.requests" 2 (Stats.find snap "server.requests")

let test_digest_mismatch_rejected () =
  let (), snap =
    with_daemon (fun socket_path ->
        let forged =
          match Protocol.request_of_units invocation [ ("a.c", source) ] with
          | Protocol.Req_compile c ->
            Protocol.Req_compile
              {
                c with
                Protocol.q_units =
                  List.map
                    (fun u -> { u with Protocol.q_digest = String.make 32 '0' })
                    c.Protocol.q_units;
              }
          | Protocol.Req_transform _ ->
            Alcotest.fail "request_of_units built a transform request"
        in
        (match Client.roundtrip ~socket_path forged with
        | Ok (Protocol.Resp_rejected reason) ->
          check_contains ~what:"rejection reason" reason "digest"
        | Ok (Protocol.Resp_units _ | Protocol.Resp_transformed _) ->
          Alcotest.fail "forged digest was accepted"
        | Error e -> Alcotest.failf "round-trip failed: %s" e);
        (* A rejection must not wedge the daemon either. *)
        let after =
          expect_unit (Client.compile ~socket_path invocation [ ("a.c", source) ])
        in
        Alcotest.(check bool) "daemon serves after a rejection" false
          after.Protocol.r_cache_hit)
  in
  Alcotest.(check int) "server.rejects" 1 (Stats.find snap "server.rejects")

(* The v2 transform request: the daemon applies the invocation's transfo
   script and returns the rewritten source, caching the transfo stage. *)
let test_transform_request () =
  let (), snap =
    with_daemon (fun socket_path ->
        let inv =
          {
            invocation with
            Invocation.transfo_script =
              Some
                (Invocation.Source
                   {
                     name = "s.transfo";
                     contents = "unroll partial(2) @ for(i)";
                   });
          }
        in
        let once () =
          match Client.transform ~socket_path inv ~name:"a.c" source with
          | Ok (Protocol.Resp_transformed { p_result = Ok t; _ }) -> t
          | Ok (Protocol.Resp_transformed { p_result = Error e; _ }) ->
            Alcotest.failf "script failed: %s" e
          | Ok (Protocol.Resp_rejected reason) ->
            Alcotest.failf "request rejected: %s" reason
          | Ok (Protocol.Resp_units _) ->
            Alcotest.fail "compile response to a transform request"
          | Error e -> Alcotest.failf "round-trip failed: %s" e
        in
        let cold = once () in
        check_contains ~what:"rewritten source" cold.Protocol.x_source
          "#pragma omp unroll partial(2)";
        Alcotest.(check bool) "cold is a miss" false cold.Protocol.x_cache_hit;
        let warm = once () in
        Alcotest.(check bool) "warm hits the transfo cache" true
          warm.Protocol.x_cache_hit;
        Alcotest.(check string) "identical rewrite across the wire"
          cold.Protocol.x_source warm.Protocol.x_source;
        (* A bad script is a payload error, not a rejection. *)
        let bad =
          {
            invocation with
            Invocation.transfo_script =
              Some
                (Invocation.Source
                   { name = "s.transfo"; contents = "unroll @ for(nope)" });
          }
        in
        match Client.transform ~socket_path bad ~name:"a.c" source with
        | Ok (Protocol.Resp_transformed { p_result = Error e; _ }) ->
          check_contains ~what:"script failure" e "matched no statement"
        | Ok _ -> Alcotest.fail "bad script did not fail"
        | Error e -> Alcotest.failf "round-trip failed: %s" e)
  in
  Alcotest.(check int) "server.transforms" 3 (Stats.find snap "server.transforms")

let test_unreachable_socket () =
  let path = fresh_socket () in
  match Client.compile ~socket_path:path invocation [ ("a.c", source) ] with
  | Error msg -> check_contains ~what:"client error" msg "cannot reach daemon"
  | Ok _ -> Alcotest.fail "expected an error for a dead socket"

let test_double_start_refused () =
  let (), _ =
    with_daemon (fun socket_path ->
        let config = { Server.default_config with Server.socket_path } in
        match Server.run config with
        | Error msg -> check_contains ~what:"second daemon" msg "already"
        | Ok _ -> Alcotest.fail "second daemon bound the same live socket")
  in
  ()

let suite =
  [
    tc "warm round-trip is a full hit" test_warm_roundtrip;
    tc "ICE is contained, daemon survives" test_ice_contained;
    tc "digest mismatch is rejected" test_digest_mismatch_rejected;
    tc "transform request round-trips and caches" test_transform_request;
    tc "unreachable socket is a client error" test_unreachable_socket;
    tc "second daemon on a live socket is refused" test_double_start_refused;
  ]
