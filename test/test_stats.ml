(* The observability layer: Stats registry semantics, the counters every
   pipeline stage feeds, the -ftime-report / -print-stats output shape,
   and the monotonic clock they are all built on. *)

open Helpers
module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Driver = Mc_core.Driver

let check_contains ~what haystack needle =
  if
    not
      (String.length needle <= String.length haystack
      &&
      let rec go i =
        i + String.length needle <= String.length haystack
        && (String.sub haystack i (String.length needle) = needle || go (i + 1))
      in
      go 0)
  then Alcotest.failf "%s: %S not found in:\n%s" what needle haystack

let tile_source =
  "void recordf(double x);\nint main(void) {\n\
   double g[18][18]; double n[18][18];\n\
   for (int i = 0; i < 18; i += 1) for (int j = 0; j < 18; j += 1)\n\
   { g[i][j] = (i * 31 + j * 17) % 13; n[i][j] = 0.0; }\n\
   #pragma omp tile sizes(4, 4)\n\
   for (int i = 1; i < 17; i += 1) for (int j = 1; j < 17; j += 1)\n\
   n[i][j] = 0.25 * (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]);\n\
   recordf(n[1][1]);\nreturn 0; }"

let test_registry_semantics () =
  let c = Stats.counter ~group:"test" ~name:"events" ~desc:"d" () in
  let c' = Stats.counter ~group:"test" ~name:"events" () in
  Stats.incr c;
  Stats.add c' 4;
  (* Same (group, name) resolves to the same counter. *)
  Alcotest.(check int) "idempotent registration" 5 (Stats.value c);
  Alcotest.(check int) "snapshot sees it" 5
    (Stats.find (Stats.snapshot ()) "test.events");
  Alcotest.(check int) "find on missing key is 0" 0
    (Stats.find (Stats.snapshot ()) "test.does-not-exist");
  let t = Stats.timer ~group:"test" ~name:"phase" in
  Stats.record t 0.25;
  Stats.record t 0.25;
  let total, count =
    match
      List.find_opt (fun (n, _, _) -> n = "test.phase") (Stats.timings ())
    with
    | Some (_, total, count) -> (total, count)
    | None -> Alcotest.fail "timer not registered"
  in
  Alcotest.(check int) "two intervals" 2 count;
  Alcotest.(check bool) "accumulated" true (abs_float (total -. 0.5) < 1e-9);
  Stats.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Stats.value c);
  Alcotest.(check bool) "reset zeroes timers" true
    (List.for_all (fun (_, total, _) -> total = 0.0) (Stats.timings ()))

let test_compile_counters () =
  let r = Driver.compile tile_source in
  if Mc_diag.Diagnostics.has_errors r.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all r.Driver.diag);
  let nonzero name =
    let v = Stats.find r.Driver.stats name in
    if v <= 0 then Alcotest.failf "counter %s expected non-zero, got %d" name v
  in
  nonzero "lexer.tokens-lexed";
  nonzero "pp.files-entered";
  nonzero "pp.pragmas-kept";
  nonzero "parser.external-decls";
  nonzero "parser.omp-directives";
  nonzero "ast.exprs-created";
  nonzero "ast.stmts-created";
  nonzero "sema.canonical-loops";
  nonzero "sema.shadow-stmts-built";
  nonzero "sema.tile-transforms";
  nonzero "codegen.functions-emitted";
  nonzero "codegen.ir-instructions-classic";
  nonzero "passes.pass-runs";
  (* The irbuilder path was not taken for this compile. *)
  Alcotest.(check int) "irbuilder instructions" 0
    (Stats.find r.Driver.stats "codegen.ir-instructions-irbuilder")

let test_compile_resets_between_runs () =
  let r1 = Driver.compile tile_source in
  let r2 = Driver.compile tile_source in
  (* The same deterministic pipeline must produce the same counts — a
     growing second snapshot would mean the per-compile registry scoping
     is broken. *)
  Alcotest.(check (list (pair string int))) "snapshots identical"
    r1.Driver.stats r2.Driver.stats

let test_compile_preserves_embedder_registry () =
  (* [Driver.compile] runs in its own scoped registry and *merges* into
     the caller's current registry on the way out: an embedder's counters
     accrue and are never reset out from under it (the pre-refactor
     driver zeroed whatever registry the calling domain was scoped to). *)
  let registry = Stats.Registry.create () in
  Stats.with_registry registry (fun () ->
      let mine = Stats.counter ~group:"embedder" ~name:"work-items" () in
      Stats.add mine 7;
      let r = Driver.compile tile_source in
      if Mc_diag.Diagnostics.has_errors r.Driver.diag then
        Alcotest.fail "compile failed";
      Alcotest.(check int) "embedder counter survives the compile" 7
        (Stats.value mine);
      (* ...and the compile's own events merged in alongside it. *)
      Alcotest.(check bool) "compile counters merged into caller" true
        (Stats.find (Stats.snapshot ()) "lexer.tokens-lexed" > 0))

let test_interp_counters () =
  let src =
    "void record(long x);\nint main(void) {\nlong s = 0;\n\
     #pragma omp parallel for schedule(dynamic, 2)\n\
     for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"
  in
  let r = Driver.compile src in
  (match Driver.run r with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "run failed: %s" e);
  let snap = Stats.snapshot () in
  Alcotest.(check bool) "steps counted" true
    (Stats.find snap "interp.steps-executed" > 0);
  Alcotest.(check bool) "parallel region counted" true
    (Stats.find snap "interp.parallel-regions" > 0);
  Alcotest.(check bool) "dynamic chunks dispatched" true
    (Stats.find snap "interp.chunks-dynamic" > 0)

let test_time_report_shape () =
  ignore (Driver.compile tile_source);
  let report = Stats.render_time_report () in
  check_contains ~what:"banner" report "time report";
  check_contains ~what:"clock kind" report "monotonic wall clock";
  List.iter
    (fun stage -> check_contains ~what:"stage row" report stage)
    [ "lex"; "preprocess"; "parse-sema"; "codegen"; "passes" ];
  (* Pass pipeline timers render as their own group. *)
  List.iter
    (fun pass -> check_contains ~what:"pass row" report pass)
    [ "simplifycfg"; "mem2reg"; "loop-unroll" ];
  check_contains ~what:"percentages" report "%)";
  check_contains ~what:"group total" report "Total";
  let stats = Stats.render_stats () in
  check_contains ~what:"stats banner" stats "Statistics Collected";
  check_contains ~what:"stats row" stats "lexer.tokens-lexed"

let test_driver_timings_nonnegative () =
  let r = Driver.compile tile_source in
  let t = r.Driver.timings in
  List.iter
    (fun (name, v) ->
      if v < 0.0 then Alcotest.failf "stage %s measured negative time" name)
    [
      ("lex", t.Driver.t_lex);
      ("preprocess", t.Driver.t_preprocess);
      ("parse-sema", t.Driver.t_parse_sema);
      ("codegen", t.Driver.t_codegen);
      ("passes", t.Driver.t_passes);
    ]

let test_codegen_time_survives_unsupported () =
  (* Globals are unsupported in codegen: the error path must still report
     the stage timings truthfully (codegen time is whatever elapsed before
     the bail-out, never a lie of exactly 0 reported on principle). *)
  let registry = Stats.Registry.create () in
  let r =
    Stats.with_registry registry (fun () ->
        Driver.compile "int g = 1;\nint main(void) { return g; }")
  in
  (match r.Driver.codegen_error with
  | Some msg ->
    if not (String.length msg > 0) then Alcotest.fail "empty codegen error"
  | None -> Alcotest.fail "expected a codegen error for a global variable");
  Alcotest.(check bool) "no IR" true (r.Driver.ir = None);
  Alcotest.(check bool) "codegen time non-negative" true
    (r.Driver.timings.Driver.t_codegen >= 0.0);
  (* The codegen timer recorded exactly one interval for this compile
     (read from a registry scoped to it, since the compile merges its
     events into whatever registry the caller holds). *)
  match
    List.find_opt
      (fun (n, _, _) -> n = "driver.codegen")
      (Stats.timings ~registry ())
  with
  | Some (_, _, count) -> Alcotest.(check int) "one interval" 1 count
  | None -> Alcotest.fail "driver.codegen timer missing"

let test_pass_timings () =
  let r = Driver.compile ~options:{ Driver.default_options with Driver.optimize = false } tile_source in
  let m =
    match r.Driver.ir with Some m -> m | None -> Alcotest.fail "no IR"
  in
  let report =
    Mc_passes.Pass_manager.run ~passes:Mc_passes.Pass_manager.o1 m
  in
  let pts = report.Mc_passes.Pass_manager.pass_timings in
  Alcotest.(check int) "one timing per pass"
    (List.length Mc_passes.Pass_manager.o1)
    (List.length pts);
  List.iter
    (fun pt ->
      let open Mc_passes.Pass_manager in
      if pt.pt_wall < 0.0 then
        Alcotest.failf "pass %s measured negative time" pt.pt_name;
      if pt.pt_insts_before < 0 || pt.pt_insts_after < 0 then
        Alcotest.failf "pass %s has negative instruction counts" pt.pt_name;
      (* A pass that reports no change must not alter the module size. *)
      if (not pt.pt_changed) && pt.pt_insts_after <> pt.pt_insts_before then
        Alcotest.failf "pass %s changed size without reporting a change"
          pt.pt_name)
    pts;
  Alcotest.(check (list string)) "order preserved"
    Mc_passes.Pass_manager.o1
    (List.map (fun pt -> pt.Mc_passes.Pass_manager.pt_name) pts)

let test_clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed () >= 0.0)

let suite =
  [
    tc "registry semantics" test_registry_semantics;
    tc "compile fills stage counters" test_compile_counters;
    tc "compile resets the registry" test_compile_resets_between_runs;
    tc "compile preserves the embedder registry"
      test_compile_preserves_embedder_registry;
    tc "interpreter fills runtime counters" test_interp_counters;
    tc "time report and stats output shape" test_time_report_shape;
    tc "driver timings are non-negative" test_driver_timings_nonnegative;
    tc "codegen time survives Unsupported" test_codegen_time_survives_unsupported;
    tc "per-pass timings" test_pass_timings;
    tc "clock is monotonic" test_clock_monotonic;
  ]
