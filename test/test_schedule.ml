(* Property tests for the chunked static schedule ([schedule(static, c)]):
   the round-robin blocks handed out across the team must cover the
   iteration space [0, trip) exactly once, and a thread whose first block
   starts past the trip count gets an empty chunk (ub < lb). *)

open Helpers
module Schedule = Mc_omprt.Schedule

(* All chunks thread [tid] owns: its first block from [static_chunked],
   then every [stride]-th block after it, each clipped to the space. *)
let chunks_for_thread ~trip ~nth ~tid ~cs =
  let (lb0, ub0), stride =
    Schedule.static_chunked ~trip_count:trip ~num_threads:nth ~tid
      ~chunk_size:cs
  in
  let cs = if Int64.compare cs 1L < 0 then 1L else cs in
  let rec go lb acc =
    if Int64.compare lb trip >= 0 then List.rev acc
    else
      let ub =
        let candidate = Int64.add lb (Int64.sub cs 1L) in
        if Int64.compare candidate trip >= 0 then Int64.sub trip 1L
        else candidate
      in
      go (Int64.add lb stride) ((lb, ub) :: acc)
  in
  let walked = go lb0 [] in
  (* The returned first chunk must agree with the walk when non-empty. *)
  (match walked with
  | (lb, ub) :: _ ->
    Alcotest.(check bool)
      "first chunk agrees" true
      (Int64.equal lb lb0 && Int64.equal ub ub0)
  | [] ->
    Alcotest.(check bool) "past-the-end chunk is empty" true
      (Int64.compare ub0 lb0 < 0));
  walked

let arb_chunked =
  QCheck.(triple (int_range 0 300) (int_range 1 8) (int_range 1 16))

let props =
  [
    prop "chunked round-robin covers [0, trip) exactly once" arb_chunked
      (fun (trip, nth, cs) ->
        let trip = Int64.of_int trip and cs = Int64.of_int cs in
        let chunks =
          List.concat_map
            (fun tid -> chunks_for_thread ~trip ~nth ~tid ~cs)
            (List.init nth Fun.id)
        in
        Schedule.coverage chunks ~trip_count:trip);
    prop "first chunk starts at tid * chunk_size" arb_chunked
      (fun (trip, nth, cs) ->
        let trip = Int64.of_int trip and cs64 = Int64.of_int cs in
        List.for_all
          (fun tid ->
            let (lb, _), stride =
              Schedule.static_chunked ~trip_count:trip ~num_threads:nth ~tid
                ~chunk_size:cs64
            in
            Int64.equal lb (Int64.of_int (tid * cs))
            && Int64.equal stride (Int64.of_int (nth * cs)))
          (List.init nth Fun.id));
    prop "threads own disjoint non-empty chunks" arb_chunked
      (fun (trip, nth, cs) ->
        let trip = Int64.of_int trip and cs = Int64.of_int cs in
        let all =
          List.concat_map
            (fun tid ->
              List.map
                (fun c -> (tid, c))
                (chunks_for_thread ~trip ~nth ~tid ~cs))
            (List.init nth Fun.id)
        in
        List.for_all
          (fun (t1, (lb1, ub1)) ->
            List.for_all
              (fun (t2, (lb2, ub2)) ->
                t1 = t2
                || Int64.compare ub1 lb2 < 0
                || Int64.compare ub2 lb1 < 0)
              all)
          all);
  ]

let test_empty_chunk_edge () =
  (* tid 6 of 8 with chunk size 1 and only 4 iterations: its first block
     would start at 6, past the last iteration 3 — the chunk must come
     back empty (ub < lb), and walking it must yield no iterations. *)
  let (lb, ub), stride =
    Schedule.static_chunked ~trip_count:4L ~num_threads:8 ~tid:6
      ~chunk_size:1L
  in
  Alcotest.(check bool) "lb past the space" true (Int64.compare lb 4L >= 0);
  Alcotest.(check bool) "empty encoding" true (Int64.compare ub lb < 0);
  Alcotest.(check bool) "stride spans the team" true (Int64.equal stride 8L);
  let walked = chunks_for_thread ~trip:4L ~nth:8 ~tid:6 ~cs:1L in
  Alcotest.(check int) "no iterations" 0 (List.length walked)

let test_zero_trip () =
  List.iter
    (fun tid ->
      let walked = chunks_for_thread ~trip:0L ~nth:4 ~tid ~cs:3L in
      Alcotest.(check int) "no chunks on empty space" 0 (List.length walked))
    [ 0; 1; 2; 3 ]

let test_chunk_clamped_to_one () =
  (* libomp clamps a non-positive chunk to 1. *)
  let (lb, ub), stride =
    Schedule.static_chunked ~trip_count:10L ~num_threads:2 ~tid:0
      ~chunk_size:0L
  in
  Alcotest.(check bool) "single-iteration chunk" true
    (Int64.equal lb 0L && Int64.equal ub 0L && Int64.equal stride 2L)

let suite =
  [
    tc "empty chunk when lb exceeds trip count" test_empty_chunk_edge;
    tc "zero trip count yields no chunks" test_zero_trip;
    tc "chunk size clamps to one" test_chunk_clamped_to_one;
  ]
  @ props
