(* Transfo suite: target-DSL resolution (hit / miss / ambiguity), the
   scripted-vs-pragma IR identity that makes the engine trustworthy, the
   memset idiom rewrite, the differential oracle, transfo-stage caching
   (content change invalidates, comment edit hits), and the new flags'
   argv round-trip. *)

open Helpers
module Driver = Mc_core.Driver
module Pipeline = Mc_core.Pipeline
module Cache = Mc_core.Cache
module Invocation = Mc_core.Invocation
module Target = Mc_transfo.Target
module Script = Mc_transfo.Script
module Engine = Mc_transfo.Engine
module Diag = Mc_diag.Diagnostics

let frontend = Driver.frontend ~options:(o0 classic)

let resolve source target =
  let diag, tu = frontend source in
  if Diag.has_errors diag then
    Alcotest.failf "frontend failed:\n%s" (Diag.render_all diag);
  (Target.resolve diag tu target, diag)

let count_substring hay needle =
  let n = String.length needle in
  let rec go from acc =
    if from + n > String.length hay then acc
    else if String.sub hay from n = needle then go (from + 1) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

(* ---- resolution ---------------------------------------------------------- *)

let two_loops =
  "void record(long x);\n\
   int main(void) {\n\
  \  long s = 0;\n\
  \  for (int i = 0; i < 4; i += 1) s += i;\n\
  \  for (int i = 0; i < 8; i += 1) s += i;\n\
  \  record(s);\n\
  \  return 0;\n\
   }\n"

let test_resolution_hit () =
  match resolve two_loops (Target.occurrence (Target.cFor "i") 1) with
  | Ok stmt, _ ->
    Alcotest.(check (option string))
      "resolved an i loop" (Some "i")
      (Target.loop_var_name stmt)
  | Error Target.Resolution_failed, diag ->
    Alcotest.failf "resolution failed:\n%s" (Diag.render_all diag)

let test_resolution_miss () =
  match resolve two_loops (Target.cFor "zz") with
  | Ok _, _ -> Alcotest.fail "for(zz) resolved against a program without one"
  | Error Target.Resolution_failed, diag ->
    check_contains ~what:"miss diagnostic" (Diag.render_all diag)
      "matched no statement"

(* The ambiguity-refusal regression of the issue: two i loops, a bare
   for(i) target, and a diagnostic locating both candidates. *)
let test_resolution_ambiguity () =
  match
    resolve two_loops (Target.nested_in (Target.cFun "main") (Target.cFor "i"))
  with
  | Ok _, _ -> Alcotest.fail "ambiguous target resolved silently"
  | Error Target.Resolution_failed, diag ->
    let rendered = Diag.render_all diag in
    check_contains ~what:"ambiguity diagnostic" rendered "matched 2 statements";
    check_contains ~what:"disambiguation hint" rendered "occurrence";
    Alcotest.(check int) "one note per candidate" 2
      (count_substring rendered "note:")

let test_resolution_occurrence () =
  let pick k =
    match
      resolve two_loops
        (Target.occurrence
           (Target.nested_in (Target.cFun "main") (Target.cFor "i"))
           k)
    with
    | Ok stmt, _ -> stmt
    | Error Target.Resolution_failed, diag ->
      Alcotest.failf "occurrence(%d) failed:\n%s" k (Diag.render_all diag)
  in
  let first = pick 1 and second = pick 2 in
  Alcotest.(check bool) "occurrences are distinct statements" true
    (first.Mc_ast.Tree.s_id <> second.Mc_ast.Tree.s_id)

(* ---- scripted vs pragma'd: byte-identical IR ----------------------------- *)

let wrap body =
  "void record(long x);\n\
   int main(void) {\n\
  \  long s = 0;\n" ^ body ^ "  record(s);\n  return 0;\n}\n"

let ij_nest =
  "  for (int i = 0; i < 6; i += 1)\n\
  \    for (int j = 0; j < 4; j += 1)\n\
  \      s += i * 10 + j;\n"

(* (label, script, plain body, hand-pragma'd body) *)
let identity_cases =
  [
    ( "unroll",
      "unroll partial(3) @ for(i)",
      "  for (int i = 0; i < 12; i += 1) s += i;\n",
      "  #pragma omp unroll partial(3)\n\
      \  for (int i = 0; i < 12; i += 1) s += i;\n" );
    ( "tile",
      "tile sizes(2,2) @ for(i)",
      ij_nest,
      "  #pragma omp tile sizes(2,2)\n" ^ ij_nest );
    ( "stripe",
      "stripe sizes(4) @ for(i)",
      "  for (int i = 0; i < 12; i += 1) s += i;\n",
      "  #pragma omp stripe sizes(4)\n\
      \  for (int i = 0; i < 12; i += 1) s += i;\n" );
    ( "reverse",
      "reverse @ for(i)",
      "  for (int i = 0; i < 9; i += 1) s += i * 7;\n",
      "  #pragma omp reverse\n\
      \  for (int i = 0; i < 9; i += 1) s += i * 7;\n" );
    ( "interchange",
      "interchange permutation(2,1) @ for(i)",
      ij_nest,
      "  #pragma omp interchange permutation(2,1)\n" ^ ij_nest );
    ( "fuse",
      "fuse @ seq",
      "  {\n\
      \    for (int i = 0; i < 8; i += 1) s += i;\n\
      \    for (int i = 0; i < 8; i += 1) s += i * 3;\n\
      \  }\n",
      "  #pragma omp fuse\n\
      \  {\n\
      \    for (int i = 0; i < 8; i += 1) s += i;\n\
      \    for (int i = 0; i < 8; i += 1) s += i * 3;\n\
      \  }\n" );
    ( "fission",
      "fission @ for(i)",
      "  long t = 0;\n\
      \  for (int i = 0; i < 8; i += 1) {\n\
      \    s += i;\n\
      \    t += i * 2;\n\
      \  }\n\
      \  s += t;\n",
      "  long t = 0;\n\
      \  #pragma omp fission\n\
      \  for (int i = 0; i < 8; i += 1) {\n\
      \    s += i;\n\
      \    t += i * 2;\n\
      \  }\n\
      \  s += t;\n" );
  ]

let ir_text ~what (options : Driver.options) source =
  let r = Driver.compile ~options source in
  if Diag.has_errors r.Driver.diag then
    Alcotest.failf "%s failed to compile:\n%s" what
      (Diag.render_all r.Driver.diag);
  match r.Driver.ir with
  | Some m -> Mc_ir.Printer.module_to_string m
  | None ->
    Alcotest.failf "%s produced no IR (%s)" what
      (Option.value ~default:"?" r.Driver.codegen_error)

let test_scripted_matches_pragma () =
  List.iter
    (fun (label, script, plain, pragma'd) ->
      List.iter
        (fun (mode, options) ->
          let scripted =
            ir_text
              ~what:(label ^ " scripted " ^ mode)
              { options with Driver.transfo_script = Some script }
              (wrap plain)
          in
          let by_hand =
            ir_text ~what:(label ^ " pragma'd " ^ mode) options (wrap pragma'd)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: scripted IR = pragma'd IR (%s)" label mode)
            by_hand scripted)
        [ ("classic", classic); ("irbuilder", irbuilder) ])
    identity_cases

(* Composition: a later step targets the same region an earlier step
   already pragma'd; the insertion hops above the existing block, so the
   result equals writing both pragmas by hand (outermost last). *)
let test_scripted_composition_matches_pragma () =
  let script = "tile sizes(2,2) @ for(i)\nreverse @ for(i)" in
  let by_hand =
    wrap ("  #pragma omp reverse\n  #pragma omp tile sizes(2,2)\n" ^ ij_nest)
  in
  List.iter
    (fun (mode, options) ->
      let scripted =
        ir_text
          ~what:("composition scripted " ^ mode)
          { options with Driver.transfo_script = Some script }
          (wrap ij_nest)
      in
      Alcotest.(check string)
        ("composed script IR = stacked pragmas IR (" ^ mode ^ ")")
        (ir_text ~what:("composition pragma'd " ^ mode) options by_hand)
        scripted)
    [ ("classic", classic); ("irbuilder", irbuilder) ]

(* ---- semantic preservation (fission/fuse round trip) --------------------- *)

let test_fission_fuse_preserve_trace () =
  List.iter
    (fun (label, script, body) ->
      let plain = wrap body in
      let reference = trace_of ~options:classic plain in
      let scripted =
        trace_of
          ~options:{ classic with Driver.transfo_script = Some script }
          plain
      in
      Alcotest.(check string)
        (label ^ " preserves the execution trace")
        (trace_to_string reference)
        (trace_to_string scripted))
    [
      ( "fission",
        "fission @ for(i)",
        "  long t = 0;\n\
        \  for (int i = 0; i < 10; i += 1) {\n\
        \    s += i;\n\
        \    t += i * i;\n\
        \  }\n\
        \  s += t;\n" );
      ( "fuse",
        "fuse @ seq",
        "  {\n\
        \    for (int i = 0; i < 10; i += 1) s += i;\n\
        \    for (int i = 0; i < 10; i += 1) s += i * i;\n\
        \  }\n" );
    ]

(* ---- the memset idiom rewrite -------------------------------------------- *)

let memset_program =
  "void record(long x);\n\
   int main(void) {\n\
  \  long a[8];\n\
  \  for (int i = 0; i < 8; i += 1) a[i] = 0;\n\
  \  long s = 5;\n\
  \  for (int i = 0; i < 8; i += 1) s += a[i];\n\
  \  record(s);\n\
  \  return 0;\n\
   }\n"

let test_memset_positive () =
  let script = "memset @ fun(main) for(i) occurrence(1)" in
  match
    Pipeline.transform ~options:classic ~name:"m.c" ~script memset_program
  with
  | Error e -> Alcotest.failf "memset rewrite failed: %s" e
  | Ok (_, rewritten, trace) ->
    check_contains ~what:"rewritten source" rewritten "memset(a, 0, 64);";
    check_contains ~what:"declared the builtin" rewritten "void memset(";
    check_contains ~what:"step trace" trace "[checked]";
    (* The rewritten program runs on the interpreter's memset builtin and
       observes exactly what the zeroing loop observed. *)
    Alcotest.(check string) "trace preserved"
      (trace_to_string (trace_of ~options:classic memset_program))
      (trace_to_string (trace_of ~options:classic rewritten))

let test_memset_negative () =
  let not_zeroing =
    "void record(long x);\n\
     int main(void) {\n\
    \  long a[8];\n\
    \  for (int i = 0; i < 8; i += 1) a[i] = 1;\n\
    \  long s = 0;\n\
    \  for (int i = 0; i < 8; i += 1) s += a[i];\n\
    \  record(s);\n\
    \  return 0;\n\
     }\n"
  in
  match
    Pipeline.transform ~options:classic ~name:"m.c"
      ~script:"memset @ fun(main) for(i) occurrence(1)" not_zeroing
  with
  | Ok _ -> Alcotest.fail "non-zeroing loop was rewritten to memset"
  | Error e -> check_contains ~what:"refusal" e "does not match the memset idiom"

(* ---- the differential oracle --------------------------------------------- *)

(* 'reverse' on a loop whose body reads the running sum is
   order-sensitive: record(s) differs after reversal, so the checked
   engine must refuse the step. *)
let test_check_catches_divergence () =
  let source =
    wrap "  for (int i = 0; i < 6; i += 1) s = s * 2 + i;\n"
  in
  let options = { classic with Driver.transfo_script = Some "reverse @ for(i)" } in
  let r = Driver.compile ~options source in
  Alcotest.(check bool) "divergent step is an error" true
    (Diag.has_errors r.Driver.diag);
  check_contains ~what:"oracle diagnostic"
    (Diag.render_all r.Driver.diag)
    "semantic check failed";
  (* --no-transfo-check applies the same step unchecked. *)
  let unchecked = { options with Driver.transfo_check = false } in
  let r = Driver.compile ~options:unchecked source in
  Alcotest.(check bool) "unchecked step applies" false
    (Diag.has_errors r.Driver.diag)

let test_script_error_located () =
  let source = wrap "  for (int i = 0; i < 6; i += 1) s += i;\n" in
  let options =
    { classic with Driver.transfo_script = Some "unroll @ for(i)\ntile sizes(2,2) @ for(q)" }
  in
  let r = Driver.compile ~options source in
  Alcotest.(check bool) "bad target is an error" true
    (Diag.has_errors r.Driver.diag);
  let rendered = Diag.render_all r.Driver.diag in
  check_contains ~what:"failing line named" rendered "transfo script line 2";
  check_contains ~what:"resolution message" rendered "matched no statement"

(* ---- caching ------------------------------------------------------------- *)

let cached_source = wrap ij_nest

let test_transform_cache () =
  let cache = Cache.create () in
  let script = "tile sizes(2,2) @ for(i)  # tile the nest" in
  let go script source =
    match Pipeline.transform ~cache ~options:classic ~name:"t.c" ~script source with
    | Ok r -> r
    | Error e -> Alcotest.failf "transform failed: %s" e
  in
  let outcome1, src1, _ = go script cached_source in
  Alcotest.(check bool) "cold executes" true (outcome1 = Pipeline.Executed);
  Alcotest.(check int) "one transfo artifact" 1
    (Cache.stage_length cache ~stage:"transfo");
  let outcome2, src2, _ = go script cached_source in
  Alcotest.(check bool) "warm hits" true (outcome2 = Pipeline.Cache_hit);
  Alcotest.(check string) "identical rewrite on hit" src1 src2;
  (* A comment-only script edit keeps the canonical form: still a hit. *)
  let outcome3, _, _ =
    go "tile sizes(2,2) @ for(i)  # a different comment\n" cached_source
  in
  Alcotest.(check bool) "comment edit still hits" true
    (outcome3 = Pipeline.Cache_hit);
  (* Changing script content or source content invalidates. *)
  let outcome4, _, _ = go "tile sizes(3,3) @ for(i)" cached_source in
  Alcotest.(check bool) "script change misses" true (outcome4 = Pipeline.Executed);
  let outcome5, _, _ = go script (cached_source ^ "// trailing\n") in
  Alcotest.(check bool) "source change misses" true (outcome5 = Pipeline.Executed)

let test_scripted_pipeline_full_hit () =
  let cache = Cache.create () in
  let options =
    { classic with Driver.transfo_script = Some "unroll partial(2) @ for(i)" }
  in
  let source = wrap "  for (int i = 0; i < 12; i += 1) s += i;\n" in
  let cold = Pipeline.execute ~cache ~options source in
  Alcotest.(check string) "cold runs the transfo pre-stage"
    "transfo:run lex:run pp:run ast:run ir:run optir:run"
    (Pipeline.render_trace cold.Pipeline.x_trace);
  Alcotest.(check bool) "cold is not a full hit" false cold.Pipeline.x_full_hit;
  let warm = Pipeline.execute ~cache ~options source in
  Alcotest.(check string) "warm hits every stage including transfo"
    "transfo:hit lex:hit pp:hit ast:hit ir:hit optir:hit"
    (Pipeline.render_trace warm.Pipeline.x_trace);
  Alcotest.(check bool) "warm is a full hit" true warm.Pipeline.x_full_hit;
  (* The transformed view survives the cache. *)
  match warm.Pipeline.x_result.Pipeline.transformed with
  | Some (src, _) -> check_contains ~what:"cached rewrite" src "#pragma omp unroll"
  | None -> Alcotest.fail "warm result lost the transformed source"

(* ---- the examples/ acceptance scenario ----------------------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* The hand-pragma'd equivalent of examples/matmul.transfo applied to
   examples/matmul.c. *)
let matmul_by_hand =
  "void record(long x);\n\n\
   void matmat(long *C, long *A, long *B) {\n\
  \  #pragma omp tile sizes(4,4)\n\
  \  for (int i = 0; i < 8; i += 1)\n\
  \    for (int j = 0; j < 8; j += 1) {\n\
  \      C[i * 8 + j] = 0;\n\
  \      #pragma omp unroll partial(2)\n\
  \      for (int k = 0; k < 8; k += 1)\n\
  \        C[i * 8 + j] = C[i * 8 + j] + A[i * 8 + k] * B[k * 8 + j];\n\
  \    }\n\
   }\n\n\
   int main(void) {\n\
  \  long A[64], B[64], C[64];\n\
  \  #pragma omp fission\n\
  \  for (int v = 0; v < 64; v += 1) {\n\
  \    A[v] = v % 7;\n\
  \    B[v] = v % 5 - 2;\n\
  \  }\n\
  \  matmat(C, A, B);\n\
  \  long s = 0;\n\
  \  for (int w = 0; w < 64; w += 1) s += C[w];\n\
  \  record(s);\n\
  \  return 0;\n\
   }\n"

let test_example_script_end_to_end () =
  let source = read_file (Filename.concat ".." "examples/matmul.c") in
  let script = read_file (Filename.concat ".." "examples/matmul.transfo") in
  (* tile + unroll + fission on named loops of the un-pragma'd program:
     byte-identical IR to the hand-pragma'd source in both
     representations. *)
  List.iter
    (fun (mode, options) ->
      let scripted =
        ir_text
          ~what:("matmul scripted " ^ mode)
          { options with Driver.transfo_script = Some script }
          source
      in
      Alcotest.(check string)
        ("matmul: scripted IR = pragma'd IR (" ^ mode ^ ")")
        (ir_text ~what:("matmul pragma'd " ^ mode) options matmul_by_hand)
        scripted)
    [ ("classic", classic); ("irbuilder", irbuilder) ];
  (* The checked script preserves the program's behaviour. *)
  Alcotest.(check string) "matmul: script preserves the trace"
    (trace_to_string (trace_of ~options:classic source))
    (trace_to_string
       (trace_of
          ~options:{ classic with Driver.transfo_script = Some script }
          source))

(* A warm second run through a persistent on-disk store: every stage —
   the transfo pre-stage included — is served from the store even after
   a simulated process restart (fresh Store + Cache on the same dir). *)
let test_example_script_persistent_warm_hit () =
  let dir = Filename.temp_file "mcc-transfo-store" "" in
  Sys.remove dir;
  Mc_support.Binio.mkdir_p dir;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      let source = read_file (Filename.concat ".." "examples/matmul.c") in
      let script = read_file (Filename.concat ".." "examples/matmul.transfo") in
      let options = { classic with Driver.transfo_script = Some script } in
      let execute () =
        let cache =
          Mc_core.Cache.create ~store:(Mc_core.Store.create ~dir ()) ()
        in
        Pipeline.execute ~cache ~options ~name:"matmul.c" source
      in
      let cold = execute () in
      Alcotest.(check bool) "cold has no errors" false
        (Diag.has_errors cold.Pipeline.x_result.Pipeline.diag);
      Alcotest.(check bool) "cold is not a full hit" false
        cold.Pipeline.x_full_hit;
      let warm = execute () in
      Alcotest.(check bool) "warm full hit across the restart" true
        warm.Pipeline.x_full_hit;
      Alcotest.(check string) "warm reuses every stage"
        "transfo:hit lex:hit pp:hit ast:hit ir:hit optir:hit"
        (Pipeline.render_trace warm.Pipeline.x_trace))

(* ---- invocation flags ---------------------------------------------------- *)

let test_invocation_argv_roundtrip () =
  match
    Invocation.of_argv
      [| "mcc"; "--transfo-script"; "x.transfo"; "--no-transfo-check"; "a.c" |]
  with
  | Error e -> Alcotest.failf "of_argv failed: %s" e
  | Ok inv ->
    Alcotest.(check bool) "script captured" true
      (inv.Invocation.transfo_script = Some (Invocation.File "x.transfo"));
    Alcotest.(check bool) "check disabled" false inv.Invocation.transfo_check;
    let rendered = Invocation.to_argv inv in
    Alcotest.(check bool) "script rendered" true
      (List.mem "-transfo-script=x.transfo" rendered);
    Alcotest.(check bool) "no-check rendered" true
      (List.mem "-no-transfo-check" rendered)

let suite =
  [
    tc "target resolves a unique loop" test_resolution_hit;
    tc "target miss is diagnosed" test_resolution_miss;
    tc "ambiguity is refused with located notes" test_resolution_ambiguity;
    tc "occurrence(k) disambiguates" test_resolution_occurrence;
    tc "scripted IR is byte-identical to pragma'd IR"
      test_scripted_matches_pragma;
    tc "script composition stacks pragmas like hand-written source"
      test_scripted_composition_matches_pragma;
    tc "fission and fuse preserve the trace" test_fission_fuse_preserve_trace;
    tc "memset idiom rewrite (positive)" test_memset_positive;
    tc "memset idiom refusal (negative)" test_memset_negative;
    tc "the differential oracle rejects divergent steps"
      test_check_catches_divergence;
    tc "script errors name the failing line" test_script_error_located;
    tc "transfo cache: content misses, comment edits hit" test_transform_cache;
    tc "scripted pipeline reaches a warm full hit"
      test_scripted_pipeline_full_hit;
    tc "examples/matmul.transfo end to end" test_example_script_end_to_end;
    tc "examples script: warm full hit via the persistent store"
      test_example_script_persistent_warm_hit;
    tc "argv round-trip of the transfo flags" test_invocation_argv_roundtrip;
  ]
