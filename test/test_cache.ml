(* Compile-cache suite: content addressing over the preprocessed stream,
   hit/miss behaviour under option and define changes, counter surfacing,
   and isolation of the IR copies a hit hands out. *)

open Helpers
module Driver = Mc_core.Driver
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Cache = Mc_core.Cache
module Stats = Mc_support.Stats

let source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   #pragma omp unroll partial(N)\n\
   for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let cached_invocation =
  { Invocation.default with Invocation.cache_enabled = true;
    defines = [ ("N", "2") ] }

let compile inst src =
  let c = Instance.compile inst src in
  if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
  c

let test_second_compile_hits () =
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = compile inst source in
  Alcotest.(check bool) "first is a miss" false first.Instance.c_cache_hit;
  Alcotest.(check int) "one entry stored" 1 (Cache.length cache);
  let second = compile inst source in
  Alcotest.(check bool) "second is a hit" true second.Instance.c_cache_hit;
  (* The cached result is behaviourally identical: same execution trace,
     same counter snapshot as the original compilation. *)
  let trace r =
    match Instance.run inst r with
    | Ok o -> trace_to_string o.Mc_interp.Interp.trace
    | Error e -> Alcotest.failf "run failed: %s" e
  in
  Alcotest.(check string) "same trace"
    (trace first.Instance.c_result)
    (trace second.Instance.c_result);
  Alcotest.(check (list (pair string int))) "same stats snapshot"
    first.Instance.c_result.Driver.stats second.Instance.c_result.Driver.stats;
  (* Hit/miss counters surface in the instance registry. *)
  let snap = Instance.stats inst in
  Alcotest.(check int) "cache.hits" 1 (Stats.find snap "cache.hits");
  Alcotest.(check int) "cache.misses" 1 (Stats.find snap "cache.misses")

let test_define_change_misses () =
  let cache = Cache.create () in
  let run_with defines =
    let inv = { cached_invocation with Invocation.defines } in
    let inst = Instance.create ~cache inv in
    (compile inst source).Instance.c_cache_hit
  in
  Alcotest.(check bool) "cold" false (run_with [ ("N", "2") ]);
  Alcotest.(check bool) "same -D hits" true (run_with [ ("N", "2") ]);
  (* A -D change that alters expansion is a different translation unit. *)
  Alcotest.(check bool) "changed -D misses" false (run_with [ ("N", "4") ]);
  Alcotest.(check int) "two entries" 2 (Cache.length cache)

let test_option_change_misses () =
  let cache = Cache.create () in
  let hit_with inv =
    let inst = Instance.create ~cache inv in
    (compile inst source).Instance.c_cache_hit
  in
  Alcotest.(check bool) "cold" false (hit_with cached_invocation);
  Alcotest.(check bool) "irbuilder differs" false
    (hit_with { cached_invocation with Invocation.use_irbuilder = true });
  Alcotest.(check bool) "-O0 differs" false
    (hit_with { cached_invocation with Invocation.opt_level = 0 });
  Alcotest.(check bool) "original still hits" true (hit_with cached_invocation)

let test_comment_change_still_hits () =
  (* Content addressing is post-preprocessing: edits the preprocessor
     erases (comments, whitespace) keep the content address. *)
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  ignore (compile inst source);
  let commented = "/* a comment the lexer drops */\n" ^ source ^ "\n\n" in
  let c = compile inst commented in
  Alcotest.(check bool) "comment-only change hits" true c.Instance.c_cache_hit

let test_hits_are_isolated_copies () =
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = compile inst source in
  let a = compile inst source in
  let b = compile inst source in
  let ir r = Option.get r.Instance.c_result.Driver.ir in
  Alcotest.(check bool) "distinct modules" true (ir a != ir b);
  (* Mutating one hit's copy must not corrupt the next hit. *)
  let m = ir a in
  m.Mc_ir.Ir.m_funcs <- [];
  let c = compile inst source in
  Alcotest.(check string) "later hit unaffected"
    (Mc_ir.Printer.module_to_string (ir first))
    (Mc_ir.Printer.module_to_string (ir c))

let test_warnings_prevent_caching () =
  (* A unit that produced diagnostics is not cached: a hit skips parse
     and sema, so caching it would silently drop its warnings. *)
  (* [cached_invocation] predefines N on the command line, so the
     in-source #define reliably triggers "'N' macro redefined". *)
  let warning_source =
    "#define N 3\nvoid record(long x);\nint main(void) {\n\
     for (int i = 0; i < N; i += 1) record(i);\nreturn 0; }"
  in
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = Instance.compile inst warning_source in
  let warned =
    Mc_diag.Diagnostics.warning_count first.Instance.c_result.Driver.diag > 0
  in
  (* Only meaningful if this source indeed warns; guard so the test fails
     loudly if the diagnostic disappears. *)
  Alcotest.(check bool) "source produces a warning" true warned;
  Alcotest.(check int) "not stored" 0 (Cache.length cache);
  let second = Instance.compile inst warning_source in
  Alcotest.(check bool) "recompile, with warnings again" false
    second.Instance.c_cache_hit;
  Alcotest.(check bool) "warning replayed" true
    (Mc_diag.Diagnostics.warning_count second.Instance.c_result.Driver.diag > 0)

let test_batch_cache_hit_rate () =
  (* Recompiling the same batch with a shared cache: every unit hits. *)
  let inputs =
    List.init 6 (fun i ->
        ( Printf.sprintf "u%d.c" i,
          Printf.sprintf
            "void record(long x);\nint main(void) { long s = 0;\n\
             for (int i = 0; i < %d; i += 1) s += i;\nrecord(s);\nreturn 0; }"
            (10 + i) ))
  in
  let cache = Cache.create () in
  let invocation = { Invocation.default with Invocation.cache_enabled = true } in
  let cold = Batch.compile ~jobs:3 ~cache ~invocation inputs in
  Alcotest.(check int) "cold: no hits" 0 (Batch.hits cold);
  let warm = Batch.compile ~jobs:3 ~cache ~invocation inputs in
  Alcotest.(check int) "warm: all hits" (List.length inputs) (Batch.hits warm);
  Alcotest.(check bool) "warm all ok" true (Batch.all_ok warm);
  (* The merged batch stats surface the hit counters. *)
  Alcotest.(check int) "merged cache.hits" (List.length inputs)
    (Stats.find warm.Batch.stats "cache.hits");
  (* Warm results still execute correctly. *)
  List.iter
    (fun u ->
      match u.Batch.u_result with
      | Ok r -> (
        match Driver.run r with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: %s" u.Batch.u_name e)
      | Error f ->
        Alcotest.failf "%s: %s" u.Batch.u_name
          f.Instance.f_ice.Mc_support.Crash_recovery.ice_exn)
    warm.Batch.units

let suite =
  [
    tc "second compile is a hit" test_second_compile_hits;
    tc "-D change is a miss" test_define_change_misses;
    tc "backend option change is a miss" test_option_change_misses;
    tc "comment-only change still hits" test_comment_change_still_hits;
    tc "hits hand out isolated IR copies" test_hits_are_isolated_copies;
    tc "diagnosed units are not cached" test_warnings_prevent_caching;
    tc "warm batch hits 100%" test_batch_cache_hit_rate;
  ]
