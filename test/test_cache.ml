(* Stage-cache suite: content addressing over the preprocessed stream,
   per-stage hit/miss behaviour under option and define changes, counter
   surfacing, and isolation of the artifact copies a hit hands out. *)

open Helpers
module Driver = Mc_core.Driver
module Pipeline = Mc_core.Pipeline
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Cache = Mc_core.Cache
module Stats = Mc_support.Stats

let source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   #pragma omp unroll partial(N)\n\
   for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let cached_invocation =
  { Invocation.default with Invocation.cache_enabled = true;
    defines = [ ("N", "2") ] }

let compile inst src =
  let c = Instance.compile inst src in
  if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
  c

let check_trace what expected (c : Instance.compilation) =
  Alcotest.(check string) what expected (Pipeline.render_trace c.Instance.c_trace)

let ir_text (c : Instance.compilation) =
  Mc_ir.Printer.module_to_string (Option.get c.Instance.c_result.Driver.ir)

let test_second_compile_hits () =
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = compile inst source in
  Alcotest.(check bool) "first is a miss" false first.Instance.c_cache_hit;
  check_trace "cold runs every stage"
    "lex:run pp:run ast:run ir:run optir:run" first;
  (* One artifact per unit-granular stage (the transfo pre-stage only
     stores when a script runs; test_transfo covers that), plus the
     per-function family: one fnast per top-level slice (the record
     prototype and main), and fnir/fnoptir for the one slice that
     produces declarations. *)
  let compile_stages = [ "lex"; "pp"; "ast"; "ir"; "optir" ] in
  Alcotest.(check int) "nine artifacts stored" 9 (Cache.length cache);
  List.iter
    (fun stage ->
      Alcotest.(check int) (stage ^ " stored") 1
        (Cache.stage_length cache ~stage))
    compile_stages;
  Alcotest.(check int) "one fnast per slice" 2
    (Cache.stage_length cache ~stage:"fnast");
  Alcotest.(check int) "fnir for the defining slice" 1
    (Cache.stage_length cache ~stage:"fnir");
  Alcotest.(check int) "fnoptir for the defining slice" 1
    (Cache.stage_length cache ~stage:"fnoptir");
  let second = compile inst source in
  Alcotest.(check bool) "second is a hit" true second.Instance.c_cache_hit;
  check_trace "warm hits every stage"
    "lex:hit pp:hit ast:hit ir:hit optir:hit" second;
  (* A hit still carries a fresh AST copy. *)
  Alcotest.(check bool) "tu present on hit" true
    (second.Instance.c_result.Driver.tu <> None);
  (* The cached result is behaviourally identical: byte-identical IR and
     the same execution trace as the cold compilation. *)
  Alcotest.(check string) "byte-identical IR" (ir_text first) (ir_text second);
  let trace r =
    match Instance.run inst r with
    | Ok o -> trace_to_string o.Mc_interp.Interp.trace
    | Error e -> Alcotest.failf "run failed: %s" e
  in
  Alcotest.(check string) "same trace"
    (trace first.Instance.c_result)
    (trace second.Instance.c_result);
  (* Aggregate and per-stage counters surface in the per-compile
     snapshots and the instance registry. *)
  let snap = Instance.stats inst in
  Alcotest.(check int) "cache.hits" 1 (Stats.find snap "cache.hits");
  Alcotest.(check int) "cache.misses" 1 (Stats.find snap "cache.misses");
  let warm = second.Instance.c_result.Driver.stats in
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "warm cache.%s-hits" stage)
        1
        (Stats.find warm (Printf.sprintf "cache.%s-hits" stage)))
    compile_stages

let test_define_change_misses () =
  let cache = Cache.create () in
  let run_with defines =
    let inv = { cached_invocation with Invocation.defines } in
    let inst = Instance.create ~cache inv in
    compile inst source
  in
  Alcotest.(check bool) "cold" false
    (run_with [ ("N", "2") ]).Instance.c_cache_hit;
  Alcotest.(check bool) "same -D hits" true
    (run_with [ ("N", "2") ]).Instance.c_cache_hit;
  (* A -D change that alters expansion is a different translation unit
     from the preprocessor onward — but the lex artifact, fingerprinted
     on the source alone, is still reused, and so is the record
     prototype's fnast slice (the N only expands inside main's body), so
     the AST stage is a partial re-run rather than a full one. *)
  check_trace "changed -D re-runs pp and the edited slice"
    "lex:hit pp:run ast:partial ir:run optir:run"
    (run_with [ ("N", "4") ]);
  Alcotest.(check int) "one lex artifact for both -D values" 1
    (Cache.stage_length cache ~stage:"lex");
  Alcotest.(check int) "two pp artifacts" 2
    (Cache.stage_length cache ~stage:"pp");
  Alcotest.(check int) "one shared fnast + one per N value for main" 3
    (Cache.stage_length cache ~stage:"fnast");
  Alcotest.(check int) "sixteen artifacts total" 16 (Cache.length cache)

let test_option_change_misses () =
  let cache = Cache.create () in
  let with_inv inv =
    let inst = Instance.create ~cache inv in
    compile inst source
  in
  Alcotest.(check bool) "cold" false
    (with_inv cached_invocation).Instance.c_cache_hit;
  (* -fopenmp-enable-irbuilder is in the sema slice: pp still hits, the
     AST stage and everything downstream misses. *)
  check_trace "irbuilder invalidates from ast on"
    "lex:hit pp:hit ast:run ir:run optir:run"
    (with_inv { cached_invocation with Invocation.use_irbuilder = true });
  (* -O only reaches the pass pipeline: everything up to the IR hits. *)
  check_trace "-O0 invalidates only optir"
    "lex:hit pp:hit ast:hit ir:hit optir:run"
    (with_inv { cached_invocation with Invocation.opt_level = 0 });
  Alcotest.(check bool) "original still hits" true
    (with_inv cached_invocation).Instance.c_cache_hit

let test_comment_change_still_hits () =
  (* Content addressing is post-preprocessing: edits the preprocessor
     erases (comments, whitespace) re-run lex/pp but keep the AST
     stage's content address — and everything downstream. *)
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  ignore (compile inst source);
  let commented = "/* a comment the lexer drops */\n" ^ source ^ "\n\n" in
  let c = compile inst commented in
  Alcotest.(check bool) "comment-only change hits" true c.Instance.c_cache_hit;
  check_trace "comment edit reuses ast/ir/optir"
    "lex:run pp:run ast:hit ir:hit optir:hit" c

let test_hits_are_isolated_copies () =
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = compile inst source in
  let a = compile inst source in
  let b = compile inst source in
  let ir r = Option.get r.Instance.c_result.Driver.ir in
  Alcotest.(check bool) "distinct modules" true (ir a != ir b);
  (* Mutating one hit's copy must not corrupt the next hit. *)
  let m = ir a in
  m.Mc_ir.Ir.m_funcs <- [];
  let c = compile inst source in
  Alcotest.(check string) "later hit unaffected"
    (Mc_ir.Printer.module_to_string (ir first))
    (Mc_ir.Printer.module_to_string (ir c))

let test_warnings_prevent_caching () =
  (* Stage artifacts are only stored while the compilation is still
     diagnostic-free: a hit replays no warnings, so a warned stage (and
     everything after it) must re-run on recompilation. *)
  (* [cached_invocation] predefines N on the command line, so the
     in-source #define reliably triggers "'N' macro redefined". *)
  let warning_source =
    "#define N 3\nvoid record(long x);\nint main(void) {\n\
     for (int i = 0; i < N; i += 1) record(i);\nreturn 0; }"
  in
  let cache = Cache.create () in
  let inst = Instance.create ~cache cached_invocation in
  let first = Instance.compile inst warning_source in
  let warned =
    Mc_diag.Diagnostics.warning_count first.Instance.c_result.Driver.diag > 0
  in
  (* Only meaningful if this source indeed warns; guard so the test fails
     loudly if the diagnostic disappears. *)
  Alcotest.(check bool) "source produces a warning" true warned;
  (* Lexing finished clean, so its artifact may be stored; the warning
     fires in the preprocessor, so pp/ast/ir/optir must not be. *)
  List.iter
    (fun stage ->
      Alcotest.(check int) (stage ^ " not stored") 0
        (Cache.stage_length cache ~stage))
    [ "pp"; "ast"; "ir"; "optir" ];
  let second = Instance.compile inst warning_source in
  Alcotest.(check bool) "recompile, with warnings again" false
    second.Instance.c_cache_hit;
  Alcotest.(check bool) "warning replayed" true
    (Mc_diag.Diagnostics.warning_count second.Instance.c_result.Driver.diag > 0)

let test_batch_cache_hit_rate () =
  (* Recompiling the same batch with a shared cache: every unit hits. *)
  let inputs =
    List.init 6 (fun i ->
        ( Printf.sprintf "u%d.c" i,
          Printf.sprintf
            "void record(long x);\nint main(void) { long s = 0;\n\
             for (int i = 0; i < %d; i += 1) s += i;\nrecord(s);\nreturn 0; }"
            (10 + i) ))
  in
  let cache = Cache.create () in
  let invocation = { Invocation.default with Invocation.cache_enabled = true } in
  let cold = Batch.compile ~jobs:3 ~cache ~invocation inputs in
  Alcotest.(check int) "cold: no hits" 0 (Batch.hits cold);
  let warm = Batch.compile ~jobs:3 ~cache ~invocation inputs in
  Alcotest.(check int) "warm: all hits" (List.length inputs) (Batch.hits warm);
  Alcotest.(check bool) "warm all ok" true (Batch.all_ok warm);
  (* The merged batch stats surface the hit counters. *)
  Alcotest.(check int) "merged cache.hits" (List.length inputs)
    (Stats.find warm.Batch.stats "cache.hits");
  (* Warm results still execute correctly. *)
  List.iter
    (fun u ->
      match u.Batch.u_result with
      | Ok r -> (
        match Driver.run r with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: %s" u.Batch.u_name e)
      | Error f ->
        Alcotest.failf "%s: %s" u.Batch.u_name
          f.Instance.f_ice.Mc_support.Crash_recovery.ice_exn)
    warm.Batch.units

let suite =
  [
    tc "second compile is a hit" test_second_compile_hits;
    tc "-D change is a miss" test_define_change_misses;
    tc "backend option change is a miss" test_option_change_misses;
    tc "comment-only change still hits" test_comment_change_still_hits;
    tc "hits hand out isolated IR copies" test_hits_are_isolated_copies;
    tc "diagnosed units are not cached" test_warnings_prevent_caching;
    tc "warm batch hits 100%" test_batch_cache_hit_rate;
  ]
