(* Stage-graph pipeline suite: per-stage fingerprint slices, incremental
   recompilation traces and counters, include-set invalidation, and the
   cold/warm and 1-domain/N-domain determinism guarantees. *)

open Helpers
module Driver = Mc_core.Driver
module Pipeline = Mc_core.Pipeline
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Cache = Mc_core.Cache
module Stats = Mc_support.Stats

let source_with_bound n =
  Printf.sprintf
    "void record(long x);\nint main(void) {\nlong s = 0;\n\
     #pragma omp unroll partial(4)\n\
     for (int i = 0; i < %d; i += 1) s += i;\nrecord(s);\nreturn 0; }"
    n

let source = source_with_bound 40

let compile inst ?name src =
  let c = Instance.compile inst ?name src in
  if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
  c

let trace_of (c : Instance.compilation) =
  Pipeline.render_trace c.Instance.c_trace

let counter (c : Instance.compilation) name =
  Stats.find c.Instance.c_result.Driver.stats name

let ir_text (c : Instance.compilation) =
  Mc_ir.Printer.module_to_string (Option.get c.Instance.c_result.Driver.ir)

(* ---- fingerprint slices ------------------------------------------------- *)

let test_option_slices () =
  let o = Driver.default_options in
  (* No option reaches the lexer. *)
  Alcotest.(check string) "lex slice is empty" ""
    (Pipeline.option_slice Pipeline.Lex
       { o with Driver.optimize = false; loop_nest_limit = 1; fold = false });
  (* -floop-nest-limit is sema-relevant, invisible to lex/pp/codegen/passes. *)
  let o' = { o with Driver.loop_nest_limit = 2 } in
  List.iter
    (fun st ->
      Alcotest.(check string)
        (Pipeline.stage_tag st ^ " slice ignores loop_nest_limit")
        (Pipeline.option_slice st o) (Pipeline.option_slice st o'))
    [ Pipeline.Lex; Pipeline.Preprocess; Pipeline.Codegen; Pipeline.Passes ];
  Alcotest.(check bool) "ast slice sees loop_nest_limit" false
    (Pipeline.option_slice Pipeline.Parse_sema o
    = Pipeline.option_slice Pipeline.Parse_sema o');
  (* -O is pass-relevant only. *)
  let oO0 = { o with Driver.optimize = false } in
  List.iter
    (fun st ->
      Alcotest.(check string)
        (Pipeline.stage_tag st ^ " slice ignores -O")
        (Pipeline.option_slice st o) (Pipeline.option_slice st oO0))
    [ Pipeline.Lex; Pipeline.Preprocess; Pipeline.Parse_sema; Pipeline.Codegen ];
  Alcotest.(check bool) "passes slice sees -O" false
    (Pipeline.option_slice Pipeline.Passes o
    = Pipeline.option_slice Pipeline.Passes oO0);
  (* -ferror-limit is in no slice: cached artifacts are diagnostic-free,
     and a diagnostic-free run is identical under any error limit. *)
  let oe = { o with Driver.error_limit = 1 } in
  List.iter
    (fun st ->
      Alcotest.(check string)
        (Pipeline.stage_tag st ^ " slice ignores error_limit")
        (Pipeline.option_slice st o) (Pipeline.option_slice st oe))
    Pipeline.stages

(* ---- incremental recompilation ------------------------------------------ *)

let test_recompile_warm_hits_every_stage () =
  (* [recompile] provides the cache even when the invocation didn't. *)
  let inst = Instance.create Invocation.default in
  Alcotest.(check bool) "no cache up front" true (Instance.cache inst = None);
  let cold = Instance.recompile inst source in
  Alcotest.(check bool) "recompile created a cache" true
    (Instance.cache inst <> None);
  Alcotest.(check string) "cold trace"
    "lex:run pp:run ast:run ir:run optir:run"
    (trace_of cold);
  let warm = Instance.recompile inst source in
  Alcotest.(check bool) "warm recompile is a full hit" true
    warm.Instance.c_cache_hit;
  Alcotest.(check string) "warm trace"
    "lex:hit pp:hit ast:hit ir:hit optir:hit"
    (trace_of warm);
  Alcotest.(check string) "warm IR byte-identical to cold" (ir_text cold)
    (ir_text warm)

let test_comment_edit_counters () =
  (* The acceptance property, read off the per-compile stage counters: a
     comment-only edit re-runs lex/pp (misses) and reuses every stage
     from the AST onward (hits). *)
  let inv = { Invocation.default with Invocation.cache_enabled = true } in
  let inst = Instance.create inv in
  ignore (compile inst source);
  let edited = source ^ "\n/* trailing comment, invisible post-pp */\n" in
  let c = compile inst edited in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (counter c name))
    [
      ("cache.lex-misses", 1);
      ("cache.lex-hits", 0);
      ("cache.pp-misses", 1);
      ("cache.pp-hits", 0);
      ("cache.ast-hits", 1);
      ("cache.ast-misses", 0);
      ("cache.ir-hits", 1);
      ("cache.ir-misses", 0);
      ("cache.optir-hits", 1);
      ("cache.optir-misses", 0);
    ];
  Alcotest.(check bool) "comment edit counts as whole-pipeline hit" true
    c.Instance.c_cache_hit

let test_body_edit_reruns_backend () =
  let inst =
    Instance.create { Invocation.default with Invocation.cache_enabled = true }
  in
  ignore (compile inst source);
  let c = compile inst (source_with_bound 41) in
  (* The edit is inside main's body: the record prototype's fnast slice
     is reused (ast:partial), while main — the only slice producing
     declarations, hence the only one with fnir/fnoptir artifacts —
     re-runs codegen and passes in full. *)
  Alcotest.(check string) "body edit re-runs the edited function"
    "lex:run pp:run ast:partial ir:run optir:run" (trace_of c);
  Alcotest.(check int) "prototype slice reused" 1 (counter c "cache.fn-hits");
  Alcotest.(check int) "edited slice re-parsed" 1 (counter c "cache.fn-misses");
  Alcotest.(check bool) "not a whole-pipeline hit" false c.Instance.c_cache_hit

let test_loop_nest_limit_invalidates_sema_onward () =
  (* A -floop-nest-limit change touches only the sema slice: lex and pp
     artifacts survive, the AST stage and everything downstream re-run. *)
  let cache = Cache.create () in
  let base = { Invocation.default with Invocation.cache_enabled = true } in
  let inst = Instance.create ~cache base in
  ignore (compile inst source);
  let bumped =
    Instance.create ~cache
      { base with Invocation.loop_nest_limit = base.Invocation.loop_nest_limit + 1 }
  in
  let c = compile bumped source in
  Alcotest.(check string) "limit change re-runs sema and later"
    "lex:hit pp:hit ast:run ir:run optir:run" (trace_of c);
  (* And coming back to the original limit hits everything again. *)
  let back = compile (Instance.create ~cache base) source in
  Alcotest.(check string) "original limit fully warm"
    "lex:hit pp:hit ast:hit ir:hit optir:hit" (trace_of back)

let test_include_edit_invalidates_pp () =
  (* Editing an extra file's contents flips the recorded include digest:
     the pp lookup counts an invalidation (stale entry kept) and re-runs;
     the new expansion then misses the AST stage too.  Restoring the old
     contents revalidates the original entry. *)
  let header v = Printf.sprintf "#define V %d\n" v in
  let src = "#include \"inc.h\"\nint main(void) { return V; }" in
  let cache = Cache.create () in
  let inv files =
    {
      Invocation.default with
      Invocation.cache_enabled = true;
      extra_files = [ ("inc.h", header files) ];
    }
  in
  let c1 = compile (Instance.create ~cache (inv 2)) ~name:"m.c" src in
  Alcotest.(check string) "cold" "lex:run pp:run ast:run ir:run optir:run"
    (trace_of c1);
  let c2 = compile (Instance.create ~cache (inv 3)) ~name:"m.c" src in
  Alcotest.(check int) "pp entry invalidated" 1
    (counter c2 "cache.pp-invalidations");
  Alcotest.(check string) "include edit re-runs pp and downstream"
    "lex:hit pp:run ast:run ir:run optir:run" (trace_of c2);
  let c3 = compile (Instance.create ~cache (inv 2)) ~name:"m.c" src in
  Alcotest.(check string) "original include revalidates"
    "lex:hit pp:hit ast:hit ir:hit optir:hit" (trace_of c3);
  Alcotest.(check bool) "original is a whole-pipeline hit" true
    c3.Instance.c_cache_hit

(* ---- determinism -------------------------------------------------------- *)

let test_cold_warm_and_domain_count_determinism () =
  (* The same batch, cold vs warm and at -j 1 vs -j 4, must produce
     byte-identical IR for every unit: all per-compilation state is
     domain-local and reset per execution, and cached artifacts are
     unmarshalled copies of exactly what a cold run builds. *)
  let inputs =
    List.init 5 (fun i ->
        ( Printf.sprintf "u%d.c" i,
          Printf.sprintf
            "void record(long x);\nint main(void) {\nlong s = 0;\n\
             #pragma omp tile sizes(%d)\n\
             for (int i = 0; i < %d; i += 1) s += i;\n\
             record(s);\nreturn 0; }"
            (2 + i) (20 + (3 * i)) ))
  in
  let invocation =
    { Invocation.default with Invocation.cache_enabled = true }
  in
  let irs batch =
    List.map
      (fun u ->
        match u.Batch.u_result with
        | Ok r -> Mc_ir.Printer.module_to_string (Option.get r.Driver.ir)
        | Error _ -> Alcotest.failf "%s ICEd" u.Batch.u_name)
      batch.Batch.units
  in
  let cache1 = Cache.create () in
  let cold1 = irs (Batch.compile ~jobs:1 ~cache:cache1 ~invocation inputs) in
  let warm1 = irs (Batch.compile ~jobs:1 ~cache:cache1 ~invocation inputs) in
  let cache4 = Cache.create () in
  let cold4 = irs (Batch.compile ~jobs:4 ~cache:cache4 ~invocation inputs) in
  let warm4 = irs (Batch.compile ~jobs:4 ~cache:cache4 ~invocation inputs) in
  Alcotest.(check (list string)) "warm -j1 == cold -j1" cold1 warm1;
  Alcotest.(check (list string)) "cold -j4 == cold -j1" cold1 cold4;
  Alcotest.(check (list string)) "warm -j4 == cold -j1" cold1 warm4

let suite =
  [
    tc "per-stage option slices" test_option_slices;
    tc "warm recompile hits every stage" test_recompile_warm_hits_every_stage;
    tc "comment edit reuses AST onward (counters)" test_comment_edit_counters;
    tc "body edit re-runs the backend" test_body_edit_reruns_backend;
    tc "-floop-nest-limit invalidates sema onward"
      test_loop_nest_limit_invalidates_sema_onward;
    tc "include edit invalidates pp" test_include_edit_invalidates_pp;
    tc "cold/warm and -j1/-j4 IR identical"
      test_cold_warm_and_domain_count_determinism;
  ]
