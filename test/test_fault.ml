(* Fault-injection harness suite: the unarmed fast path, probability
   edges, deterministic replay (same seed, same schedule), per-point
   stream independence, trip counters, MCC_FAULTS spec parsing, and
   with_armed's full state save/restore. *)

open Helpers
module Fault = Mc_support.Fault
module Stats = Mc_support.Stats

let draws p n = List.init n (fun _ -> Fault.fire p)

let test_unarmed_never_fires () =
  let p = Fault.point "test.unarmed" in
  Alcotest.(check bool) "not armed" false (Fault.armed "test.unarmed");
  Alcotest.(check (list bool)) "never fires"
    (List.init 64 (fun _ -> false))
    (draws p 64)

let test_probability_edges () =
  let p = Fault.point "test.edges" in
  Fault.arm "test.edges" ~probability:1.0 ~seed:1;
  Alcotest.(check (list bool)) "p=1 always fires"
    (List.init 32 (fun _ -> true))
    (draws p 32);
  Fault.arm "test.edges" ~probability:0.0 ~seed:1;
  Alcotest.(check bool) "p=0 disarms" false (Fault.armed "test.edges");
  Alcotest.(check (list bool)) "p=0 never fires"
    (List.init 32 (fun _ -> false))
    (draws p 32);
  Fault.disarm "test.edges"

let test_deterministic_replay () =
  let p = Fault.point "test.replay" in
  Fault.arm "test.replay" ~probability:0.3 ~seed:42;
  let first = draws p 200 in
  Fault.arm "test.replay" ~probability:0.3 ~seed:42;
  let second = draws p 200 in
  Alcotest.(check (list bool)) "same seed replays the schedule" first second;
  Fault.arm "test.replay" ~probability:0.3 ~seed:43;
  let third = draws p 200 in
  Alcotest.(check bool) "distinct seed, distinct schedule" true
    (first <> third);
  (* The schedule is non-trivial at p=0.3: both outcomes occur. *)
  Alcotest.(check bool) "some trips" true (List.mem true first);
  Alcotest.(check bool) "some passes" true (List.mem false first);
  Fault.disarm "test.replay"

let test_points_fire_independently () =
  (* Two points armed with one seed must not fire in lockstep: the
     point name is mixed into the PRNG state. *)
  let a = Fault.point "test.indep-a" in
  let b = Fault.point "test.indep-b" in
  Fault.arm "test.indep-a" ~probability:0.5 ~seed:7;
  Fault.arm "test.indep-b" ~probability:0.5 ~seed:7;
  let da = draws a 128 in
  let db = draws b 128 in
  Alcotest.(check bool) "not in lockstep" true (da <> db);
  Fault.disarm "test.indep-a";
  Fault.disarm "test.indep-b"

let test_trip_counter () =
  let p = Fault.point "test.trips" in
  let registry = Stats.Registry.create () in
  Stats.with_registry registry (fun () ->
      Fault.arm "test.trips" ~probability:1.0 ~seed:3;
      for _ = 1 to 5 do
        ignore (Fault.fire p)
      done;
      Alcotest.(check int) "five trips" 5 (Fault.trips p);
      Fault.disarm "test.trips");
  Alcotest.(check int) "counter lands in the scoped registry" 5
    (Stats.find (Stats.snapshot ~registry ()) "fault.test.trips")

let test_parse_spec () =
  let specs, errors =
    Fault.parse_spec "store.read:0.5:42, server.worker:1:7"
  in
  Alcotest.(check (list string)) "no errors" [] errors;
  Alcotest.(check bool) "store.read parsed" true
    (List.assoc_opt "store.read" specs = Some (0.5, 42));
  Alcotest.(check bool) "server.worker parsed" true
    (List.assoc_opt "server.worker" specs = Some (1.0, 7));
  let specs, errors = Fault.parse_spec "nope,x:2.0:1,y:0.5:zzz,ok:0.1:3" in
  Alcotest.(check int) "three malformed items" 3 (List.length errors);
  Alcotest.(check bool) "good item still parsed" true
    (List.assoc_opt "ok" specs = Some (0.1, 3));
  let specs, errors = Fault.parse_spec "" in
  Alcotest.(check int) "empty spec parses to nothing" 0
    (List.length specs + List.length errors)

let test_with_armed_restores () =
  let p = Fault.point "test.restore" in
  Fault.arm "test.restore" ~probability:0.4 ~seed:11;
  ignore (draws p 3) (* advance the stream to a mid position *);
  Fault.with_armed
    [ ("test.restore", 1.0, 99) ]
    (fun () ->
      Alcotest.(check bool) "armed inside" true (Fault.armed "test.restore");
      Alcotest.(check (list bool)) "inner schedule fires" [ true; true ]
        (draws p 2));
  (* Restored: armed state, probability, and PRNG position — the outer
     stream continues exactly where it left off. *)
  let continued = draws p 50 in
  Fault.arm "test.restore" ~probability:0.4 ~seed:11;
  let replay = draws p 53 in
  let expected = List.filteri (fun i _ -> i >= 3) replay in
  Alcotest.(check (list bool)) "stream resumed mid-position" expected
    continued;
  Fault.disarm "test.restore";
  (* with_armed over a point that was never armed leaves it unarmed. *)
  Fault.with_armed
    [ ("test.restore2", 1.0, 1) ]
    (fun () ->
      Alcotest.(check bool) "armed inside" true (Fault.armed "test.restore2"));
  Alcotest.(check bool) "unarmed after" false (Fault.armed "test.restore2")

let suite =
  [
    tc "unarmed point never fires" test_unarmed_never_fires;
    tc "probability edges (0 and 1)" test_probability_edges;
    tc "same seed replays the same schedule" test_deterministic_replay;
    tc "points with one seed fire independently"
      test_points_fire_independently;
    tc "trips are counted in the current registry" test_trip_counter;
    tc "MCC_FAULTS spec parsing" test_parse_spec;
    tc "with_armed restores armed state and stream" test_with_armed_restores;
  ]
