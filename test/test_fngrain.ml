(* Function-granular incremental compilation suite: per-slice artifact
   reuse on body edits (traces, counters, fn-trace), byte-identity of
   relinked IR against a cold compile in both codegen modes, reuse
   across a persistent-store restart and through a warm daemon, ICE
   isolation at function granularity, and the string interner. *)

open Helpers
module Driver = Mc_core.Driver
module Pipeline = Mc_core.Pipeline
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Cache = Mc_core.Cache
module Store = Mc_core.Store
module Server = Mc_core.Server
module Client = Mc_core.Client
module Protocol = Mc_core.Protocol
module Stats = Mc_support.Stats
module Fault = Mc_support.Fault
module Intern = Mc_support.Intern
module Binio = Mc_support.Binio

(* Six top-level slices — record's prototype, four workers, main — with
   [edit] expanding only inside w2's body, so a "body edit" invalidates
   exactly one slice's artifacts. *)
let unit_with ~edit =
  Printf.sprintf
    "void record(long x);\n\
     long w0(int n) { long a = 0; for (int i = 0; i < n + 9; i += 1) a += i; \
     return a; }\n\
     long w1(int n) {\n\
     long a = 1;\n\
     #pragma omp unroll partial(4)\n\
     for (int i = 0; i < 40; i += 1) a += i * n;\n\
     return a; }\n\
     long w2(int n) { long a = %d; for (int i = 0; i < n + 7; i += 1) a += i \
     * 3; return a; }\n\
     long w3(int n) { long a = 3; for (int i = 0; i < n + 5; i += 1) a += i - \
     n; return a; }\n\
     int main(void) { record(w0(3) + w1(3) + w2(3) + w3(3)); return 0; }\n"
    edit

let base = unit_with ~edit:2
let edited = unit_with ~edit:77

let cached_invocation =
  { Invocation.default with Invocation.cache_enabled = true }

let compile inst ?name src =
  let c = Instance.compile inst ?name src in
  if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
    Alcotest.failf "compile failed:\n%s"
      (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
  c

let trace_of (c : Instance.compilation) =
  Pipeline.render_trace c.Instance.c_trace

let counter (c : Instance.compilation) name =
  try Stats.find c.Instance.c_result.Driver.stats name with Not_found -> 0

let ir_text (c : Instance.compilation) =
  Mc_ir.Printer.module_to_string (Option.get c.Instance.c_result.Driver.ir)

let run_trace inst (c : Instance.compilation) =
  match Instance.run inst c.Instance.c_result with
  | Ok o -> trace_to_string o.Mc_interp.Interp.trace
  | Error e -> Alcotest.failf "run failed: %s" e

(* ---- body edit: one slice re-runs, the rest relink ----------------------- *)

let test_body_edit_is_function_granular () =
  let inst = Instance.create cached_invocation in
  ignore (compile inst base);
  let c = compile inst edited in
  Alcotest.(check string) "every stage partial"
    "lex:run pp:run ast:partial ir:partial optir:partial" (trace_of c);
  Alcotest.(check string) "only w2 re-ran"
    "<decl>:hit w0:hit w1:hit w2:run w3:hit main:hit"
    (Pipeline.render_fn_trace c.Instance.c_fn_trace);
  Alcotest.(check int) "five slices adopted" 5 (counter c "cache.fn-hits");
  Alcotest.(check int) "one slice re-parsed" 1 (counter c "cache.fn-misses");
  Alcotest.(check bool) "sibling functions relinked" true
    (counter c "cache.fn-relinks" > 0);
  (* The relinked unit is behaviourally the edited program, not a stale
     mix: a cold compile of the edited source agrees exactly. *)
  let fresh = Instance.create Invocation.default in
  let cold = compile fresh edited in
  Alcotest.(check string) "same execution trace" (run_trace fresh cold)
    (run_trace inst c)

let test_warm_ir_byte_identical_both_modes () =
  List.iter
    (fun use_irbuilder ->
      let label = if use_irbuilder then "irbuilder" else "classic" in
      let inv = { cached_invocation with Invocation.use_irbuilder } in
      let inst = Instance.create inv in
      ignore (compile inst base);
      let warm = compile inst edited in
      let cold =
        compile
          (Instance.create { Invocation.default with Invocation.use_irbuilder })
          edited
      in
      Alcotest.(check string)
        (label ^ ": body-edit-warm IR == cold IR")
        (ir_text cold) (ir_text warm))
    [ false; true ]

(* ---- persistent store: per-function reuse across a restart --------------- *)

let temp_dir () =
  let path = Filename.temp_file "mcc-fngrain-test" "" in
  Sys.remove path;
  Binio.mkdir_p path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let store_faults () = Fault.armed "store.read" || Fault.armed "store.write"

let test_store_restart_reuses_functions () =
  (* "Restart" = a fresh Store + Cache + Instance over the same
     directory: the per-function artifacts must come back from disk, so
     a body edit in the new process still re-runs only the edited
     function.  Under an armed fault matrix the reuse assertions are
     relaxed (a fault is a legitimate miss); correctness never is. *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      let instance () =
        Instance.create
          ~cache:(Cache.create ~store:(Store.create ~dir ()) ())
          cached_invocation
      in
      ignore (compile (instance ()) base);
      let inst = instance () in
      let warm = compile inst edited in
      if not (store_faults ()) then begin
        Alcotest.(check string) "disk-warm body edit is partial"
          "lex:run pp:run ast:partial ir:partial optir:partial"
          (trace_of warm);
        Alcotest.(check int) "five slices served from disk" 5
          (counter warm "cache.fn-hits")
      end;
      let cold = compile (Instance.create Invocation.default) edited in
      Alcotest.(check string) "byte-identical IR across the restart"
        (ir_text cold) (ir_text warm))

(* ---- daemon: a warm mccd re-runs only the edited function ---------------- *)

let tolerant = Sys.getenv_opt "MCC_FAULTS" <> None

let rec retrying ?(tries = 40) f =
  match f () with
  | Ok v -> v
  | Error msg ->
    if tolerant && tries > 0 then begin
      Unix.sleepf 0.01;
      retrying ~tries:(tries - 1) f
    end
    else Alcotest.failf "%s" msg

let with_daemon f =
  let socket_path = Filename.temp_file "mccd-fngrain" ".sock" in
  Sys.remove socket_path;
  let stop = Atomic.make false in
  let config =
    {
      Server.default_config with
      Server.socket_path;
      pool_size = 1;
      idle_timeout = Some 60.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.run ~stop config) in
  let rec await n =
    if n = 0 then Alcotest.fail "daemon socket never appeared";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.02;
      await (n - 1)
    end
  in
  await 250;
  let result =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () -> f socket_path)
  in
  match Domain.join server with
  | Ok _ -> result
  | Error e -> Alcotest.failf "server failed: %s" e

let test_daemon_body_edit_reuses_functions () =
  with_daemon (fun socket_path ->
      let inv =
        { Invocation.default with
          Invocation.cache_enabled = true;
          gen_reproducer = false;
        }
      in
      let roundtrip src =
        retrying (fun () ->
            match Client.compile ~socket_path inv [ ("incr.c", src) ] with
            | Error e -> Error ("round-trip failed: " ^ e)
            | Ok { Client.response = Protocol.Resp_units { p_units; p_stats; _ };
                   _ } -> (
              match p_units with
              | [ ({ Protocol.r_outcome = Protocol.R_ok { ok_errors = false; _ };
                     _ } as u) ] ->
                Ok (u, p_stats)
              | _ -> Error "unexpected response units")
            | Ok _ -> Error "unexpected response shape")
      in
      ignore (roundtrip base);
      let u, stats = roundtrip edited in
      let stat name = try Stats.find stats name with Not_found -> 0 in
      if not tolerant then begin
        Alcotest.(check string) "daemon body edit is partial"
          "lex:run pp:run ast:partial ir:partial optir:partial"
          (Pipeline.render_trace u.Protocol.r_trace);
        Alcotest.(check int) "five slices reused by the daemon" 5
          (stat "cache.fn-hits");
        Alcotest.(check int) "one slice re-run by the daemon" 1
          (stat "cache.fn-misses")
      end
      else begin
        (* Under faults a retried request may legitimately miss more
           slices; reuse stays monotone, correctness unconditional. *)
        Alcotest.(check bool) "daemon reused at least one slice" true
          (stat "cache.fn-hits" > 0)
      end)

(* ---- ICE isolation at function granularity ------------------------------- *)

let test_ice_never_caches_siblings_reusable () =
  let boom body =
    Printf.sprintf
      "void record(long x);\n\
       long w0(int n) { return n + 1; }\n\
       long w1(int n) { return n * 2; }\n\
       long boom(int n) {\n\
       %s\n\
       return n; }\n\
       long w2(int n) { return n - 3; }\n\
       int main(void) { record(w0(1) + w1(2) + boom(3) + w2(4)); return 0; }\n"
      body
  in
  let crashing = boom "#pragma clang __debug crash" in
  let fixed = boom "n += 1;" in
  let cache = Cache.create () in
  let inst =
    Instance.create ~cache
      { cached_invocation with Invocation.gen_reproducer = false }
  in
  (match Instance.compile_safe inst crashing with
  | Ok _ -> Alcotest.fail "deliberate ICE was not contained"
  | Error f ->
    Alcotest.(check string) "ICE phase" "parse-sema"
      f.Instance.f_ice.Mc_support.Crash_recovery.ice_phase);
  (* The slices parsed before the crash were clean and stay cached; the
     crashing slice and everything at or past it never stored, and no
     unit-level or backend artifact exists at all. *)
  Alcotest.(check int) "pre-crash slices cached" 3
    (Cache.stage_length cache ~stage:"fnast");
  List.iter
    (fun stage ->
      Alcotest.(check int) (stage ^ " empty after ICE") 0
        (Cache.stage_length cache ~stage))
    [ "ast"; "ir"; "optir"; "fnir"; "fnoptir" ];
  (* Fixing the crashing function reuses the pre-crash siblings. *)
  let c = compile inst fixed in
  Alcotest.(check string) "pre-crash siblings adopted"
    "<decl>:hit w0:hit w1:hit boom:run w2:run main:run"
    (Pipeline.render_fn_trace c.Instance.c_fn_trace);
  Alcotest.(check string) "recovery compile is partial"
    "lex:run pp:run ast:partial ir:run optir:run" (trace_of c);
  (* And the recovered unit matches a cold compile exactly. *)
  let cold = compile (Instance.create Invocation.default) fixed in
  Alcotest.(check string) "byte-identical IR after recovery" (ir_text cold)
    (ir_text c)

(* ---- string interner ------------------------------------------------------ *)

let test_interner_shares_strings () =
  let a = Intern.share "fngrain_ident" in
  let b = Intern.share (String.concat "_" [ "fngrain"; "ident" ]) in
  Alcotest.(check bool) "same physical string" true (a == b);
  Alcotest.(check bool) "id is stable" true
    (Intern.id "fngrain_ident" = Intern.id b);
  Alcotest.(check bool) "to_string returns the canonical copy" true
    (Intern.to_string (Intern.id a) == a);
  (* Lexing the same unit twice yields identifier spellings that are
     physically shared across compilations (the property that shrinks
     marshalled per-function artifacts). *)
  let idents src =
    let diag, tu = Driver.frontend src in
    Alcotest.(check bool) "frontend clean" false
      (Mc_diag.Diagnostics.has_errors diag);
    List.filter_map
      (function
        | Mc_ast.Tree.Tu_fn fn -> Some fn.Mc_ast.Tree.fn_name
        | Mc_ast.Tree.Tu_var _ -> None)
      tu.Mc_ast.Tree.tu_decls
  in
  let first = idents base and second = idents base in
  Alcotest.(check bool) "function names physically shared" true
    (List.for_all2 (fun a b -> a == b) first second)

let suite =
  [
    tc "body edit re-runs only the edited function"
      test_body_edit_is_function_granular;
    tc "body-edit-warm IR byte-identical to cold (both modes)"
      test_warm_ir_byte_identical_both_modes;
    tc "per-function reuse survives a store restart"
      test_store_restart_reuses_functions;
    tc "warm daemon re-runs only the edited function"
      test_daemon_body_edit_reuses_functions;
    tc "ICE in one function never caches; siblings reusable"
      test_ice_never_caches_siblings_reusable;
    tc "interner shares identifier spellings"
      test_interner_shares_strings;
  ]
