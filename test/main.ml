let () =
  (* CI's fault matrix sets MCC_FAULTS for the whole binary; arming up
     front makes malformed specs warn once, before any suite runs, and
     lets suites relax exact-counter assertions when points are armed. *)
  Mc_support.Fault.arm_from_env ();
  Alcotest.run "loop-transformations-clang-ast"
    [
      ("int_ops", Test_int_ops.suite);
      ("srcmgr", Test_srcmgr.suite);
      ("lexer", Test_lexer.suite);
      ("preprocessor", Test_pp.suite);
      ("ast", Test_ast.suite);
      ("parser", Test_parser.suite);
      ("sema", Test_sema.suite);
      ("canonical", Test_canonical.suite);
      ("shadow", Test_shadow.suite);
      ("ir", Test_ir.suite);
      ("ompbuilder", Test_ompbuilder.suite);
      ("passes", Test_passes.suite);
      ("interp", Test_interp.suite);
      ("schedule", Test_schedule.suite);
      ("stats", Test_stats.suite);
      ("fault", Test_fault.suite);
      ("driver", Test_driver.suite);
      ("batch", Test_batch.suite);
      ("cache", Test_cache.suite);
      ("store", Test_store.suite);
      ("server", Test_server.suite);
      ("pipeline", Test_pipeline.suite);
      ("fngrain", Test_fngrain.suite);
      ("transfo", Test_transfo.suite);
      ("goldens", Test_goldens.suite);
      ("e2e", Test_e2e.suite);
      ("fuzz", Test_fuzz.suite);
      ("differential", Test_differential.suite);
      ("crash", Test_crash.suite);
      ("analysis", Test_analysis.suite);
    ]
