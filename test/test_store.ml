(* Persistent-store suite: on-disk round-trips, corruption injection
   (every malformed entry is a miss, never an ICE), schema-version
   rejection, LRU eviction order, concurrent writers, persistence
   across Cache/Instance lifetimes, and injected I/O faults (a read
   fault is a counted miss with the entry intact; a write fault
   publishes nothing — no partial entry, no stray tmp file). *)

open Helpers
module Store = Mc_core.Store
module Cache = Mc_core.Cache
module Instance = Mc_core.Instance
module Invocation = Mc_core.Invocation
module Batch = Mc_core.Batch
module Driver = Mc_core.Driver
module Pipeline = Mc_core.Pipeline
module Stats = Mc_support.Stats
module Binio = Mc_support.Binio
module Fault = Mc_support.Fault

let temp_dir () =
  let path = Filename.temp_file "mcc-store-test" "" in
  Sys.remove path;
  Binio.mkdir_p path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

(* Runs the thunk under a fresh registry so counter assertions are exact
   regardless of what earlier tests did to the shared default. *)
let with_stats f =
  let registry = Stats.Registry.create () in
  let result = Stats.with_registry registry f in
  (result, Stats.snapshot ~registry ())

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Under an env-armed fault matrix (MCC_FAULTS), [store.read] turns
   random loads into counted misses and [store.write] swallows random
   saves.  These helpers re-roll — bounded — so the suite's assertions
   hold under injection without relaxing any correctness check: an
   expected miss stays a hard miss (a fault can widen misses, never
   serve wrong data), and a save is retried until its entry is actually
   on disk.  With nothing armed each helper is a single attempt. *)
let load_expect store ~stage fp expected =
  match expected with
  | None ->
    Alcotest.(check (option (list string)))
      (fp ^ " misses") None
      (Store.load store ~stage fp)
  | Some _ ->
    let rec go tries =
      match Store.load store ~stage fp with
      | Some _ as got ->
        Alcotest.(check (option (list string))) (fp ^ " loads") expected got
      | None when Fault.armed "store.read" && tries > 0 -> go (tries - 1)
      | None ->
        Alcotest.(check (option (list string))) (fp ^ " loads") expected None
    in
    go 80

let save_ok ?version store ~stage fp candidates =
  let path = Store.entry_path store ~stage fp in
  let rec go tries =
    Store.save ?version store ~stage fp candidates;
    if
      (not (Sys.file_exists path))
      && Fault.armed "store.write" && tries > 0
    then go (tries - 1)
  in
  go 80

(* Expects the entry under [fp] to be rejected by decoding (corrupt,
   mis-keyed, wrong schema): always a [None], and — because decoding
   unlinks what it rejects — the file must end up gone.  A read fault
   returns [None] *before* decoding, leaving the file in place, so
   under the matrix the load re-rolls until the decoder really saw it. *)
let expect_rejected store ~stage fp =
  let path = Store.entry_path store ~stage fp in
  let rec go tries =
    Alcotest.(check (option (list string)))
      (fp ^ " rejected entry misses") None
      (Store.load store ~stage fp);
    if Sys.file_exists path && Fault.armed "store.read" && tries > 0 then
      go (tries - 1)
  in
  go 80

(* Exact-counter assertions only hold when no fault matrix is inflating
   the miss counters underneath us; the counters stay monotone, so a
   floor remains checkable. *)
let check_count name expected actual =
  if Fault.armed "store.read" || Fault.armed "store.write" then
    Alcotest.(check bool) (name ^ " (floor under faults)") true
      (actual >= expected)
  else Alcotest.(check int) name expected actual

let test_roundtrip_and_restart () =
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store = Store.create ~dir () in
            let candidates = [ "newest"; "older" ] in
            save_ok store ~stage:"pp" "fp-1" candidates;
            load_expect store ~stage:"pp" "fp-1" (Some candidates);
            load_expect store ~stage:"pp" "fp-2" None;
            (* A second store on the same directory — a process restart —
               adopts the entry from disk. *)
            let reopened = Store.create ~dir () in
            Alcotest.(check int) "entry adopted" 1 (Store.entry_count reopened);
            load_expect reopened ~stage:"pp" "fp-1" (Some candidates))
      in
      Alcotest.(check int) "store.stores" 1 (Stats.find snap "store.stores");
      Alcotest.(check int) "store.hits" 2 (Stats.find snap "store.hits");
      check_count "store.misses" 1 (Stats.find snap "store.misses"))

let test_corruption_is_a_miss () =
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store = Store.create ~dir () in
            let path = Store.entry_path store ~stage:"ir" "fp-c" in
            let save () = save_ok store ~stage:"ir" "fp-c" [ "artifact" ] in
            (* Truncation: an interrupted write could never publish this
               (rename is atomic), but a damaged disk can. *)
            save ();
            let good = read_file path in
            write_file path (String.sub good 0 (String.length good / 2));
            expect_rejected store ~stage:"ir" "fp-c";
            Alcotest.(check bool) "truncated entry unlinked" false
              (Sys.file_exists path);
            (* Bit flip in the marshalled body: the payload digest rejects
               it before unmarshalling can see it. *)
            save ();
            let flipped = Bytes.of_string good in
            let i = Bytes.length flipped - 5 in
            Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 1));
            write_file path (Bytes.to_string flipped);
            expect_rejected store ~stage:"ir" "fp-c";
            (* Mis-keyed: a valid entry file copied into another key's slot
               must not serve under that key. *)
            save ();
            let other = Store.entry_path store ~stage:"ir" "fp-other" in
            write_file other (read_file path);
            expect_rejected store ~stage:"ir" "fp-other";
            (* Once unlinked, later lookups are plain misses: the corrupt
               counter must not grow forever. *)
            load_expect store ~stage:"ir" "fp-other" None)
      in
      Alcotest.(check int) "store.corrupt" 3 (Stats.find snap "store.corrupt");
      check_count "store.misses" 4 (Stats.find snap "store.misses");
      Alcotest.(check int) "store.hits" 0 (Stats.find snap "store.hits"))

let test_schema_version_mismatch () =
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store = Store.create ~dir () in
            save_ok ~version:(Store.schema_version + 1) store ~stage:"ast"
              "fp-v" [ "artifact" ];
            let path = Store.entry_path store ~stage:"ast" "fp-v" in
            Alcotest.(check bool) "entry written" true (Sys.file_exists path);
            expect_rejected store ~stage:"ast" "fp-v";
            Alcotest.(check bool) "rejected entry unlinked" false
              (Sys.file_exists path))
      in
      Alcotest.(check int) "store.version-mismatch" 1
        (Stats.find snap "store.version-mismatch");
      Alcotest.(check int) "store.corrupt" 0 (Stats.find snap "store.corrupt"))

let test_eviction_order () =
  (* Learn one entry's on-disk size first (all payloads below are the
     same length, so every entry costs the same), then budget for three:
     saving a fourth must evict exactly the least recently used key. *)
  let payload = String.make 1000 'x' in
  let entry_size =
    with_store_dir (fun dir ->
        let probe = Store.create ~dir () in
        save_ok probe ~stage:"lex" "probe" [ payload ];
        Store.total_bytes probe)
  in
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store =
              Store.create ~dir ~max_bytes:((3 * entry_size) + (entry_size / 2)) ()
            in
            save_ok store ~stage:"lex" "a" [ payload ];
            save_ok store ~stage:"lex" "b" [ payload ];
            save_ok store ~stage:"lex" "c" [ payload ];
            Alcotest.(check int) "three entries fit" 3 (Store.entry_count store);
            (* Touch [a]: recency is now b < c < a. *)
            load_expect store ~stage:"lex" "a" (Some [ payload ]);
            save_ok store ~stage:"lex" "d" [ payload ];
            Alcotest.(check int) "still three entries" 3 (Store.entry_count store);
            load_expect store ~stage:"lex" "b" None;
            List.iter
              (fun fp -> load_expect store ~stage:"lex" fp (Some [ payload ]))
              [ "a"; "c"; "d" ])
      in
      Alcotest.(check int) "store.evictions" 1 (Stats.find snap "store.evictions"))

let test_concurrent_writers () =
  (* Two domains, each with its own handle on the same directory, write
     an overlapping key set concurrently.  Atomic publishes mean a third
     handle must afterwards read every key completely — last-writer-wins
     on the shared keys, no torn files anywhere. *)
  with_store_dir (fun dir ->
      let writer tag =
        Domain.spawn (fun () ->
            (* Scope a fresh registry: the shared default must not be
               mutated from two domains at once. *)
            Stats.with_registry (Stats.Registry.create ()) (fun () ->
                let store = Store.create ~dir () in
                for i = 1 to 10 do
                  let fp = Printf.sprintf "shared-%d" i in
                  save_ok store ~stage:"pp" fp [ "candidate-" ^ fp ];
                  let own = Printf.sprintf "%s-%d" tag i in
                  save_ok store ~stage:"pp" own [ "candidate-" ^ own ]
                done))
      in
      let a = writer "left" and b = writer "right" in
      Domain.join a;
      Domain.join b;
      let reader = Store.create ~dir () in
      Alcotest.(check int) "all keys present" 30 (Store.entry_count reader);
      let check_fp fp =
        load_expect reader ~stage:"pp" fp (Some [ "candidate-" ^ fp ])
      in
      for i = 1 to 10 do
        check_fp (Printf.sprintf "shared-%d" i);
        check_fp (Printf.sprintf "left-%d" i);
        check_fp (Printf.sprintf "right-%d" i)
      done)

(* ---- injected I/O faults -------------------------------------------- *)

(* Any file the store's write path could leak: the atomic-write tmp
   prefix, or the injected-fault tmp suffix. *)
let stray_tmp_files dir =
  let rec scan acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc f -> scan acc (Filename.concat path f))
        acc (Sys.readdir path)
    else
      let base = Filename.basename path in
      if
        String.starts_with ~prefix:".tmp." base
        || Filename.check_suffix base ".fault-tmp"
      then path :: acc
      else acc
  in
  scan [] dir

let test_read_fault_is_a_counted_miss () =
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store = Store.create ~dir () in
            save_ok store ~stage:"pp" "fp-f" [ "artifact" ];
            let path = Store.entry_path store ~stage:"pp" "fp-f" in
            Alcotest.(check bool) "entry published" true (Sys.file_exists path);
            Fault.with_armed
              [ ("store.read", 1.0, 5) ]
              (fun () ->
                (* Injected I/O error on lookup: a miss, not corruption —
                   the entry must survive on disk untouched. *)
                Alcotest.(check (option (list string)))
                  "injected read fault misses" None
                  (Store.load store ~stage:"pp" "fp-f");
                Alcotest.(check bool) "entry left intact" true
                  (Sys.file_exists path));
            (* Disarmed: the same entry serves, byte-identical. *)
            load_expect store ~stage:"pp" "fp-f" (Some [ "artifact" ]))
      in
      check_count "store.misses" 1 (Stats.find snap "store.misses");
      check_count "fault.store.read" 1 (Stats.find snap "fault.store.read");
      Alcotest.(check int) "store.corrupt" 0 (Stats.find snap "store.corrupt"))

let test_write_fault_publishes_nothing () =
  with_store_dir (fun dir ->
      let (), snap =
        with_stats (fun () ->
            let store = Store.create ~dir () in
            let path = Store.entry_path store ~stage:"ir" "fp-w" in
            Fault.with_armed
              [ ("store.write", 1.0, 6) ]
              (fun () ->
                (* Injected short write / ENOSPC mid-publish: nothing may
                   become visible — no entry, no half-written tmp. *)
                Store.save store ~stage:"ir" "fp-w" [ "artifact" ];
                Alcotest.(check bool) "no entry published" false
                  (Sys.file_exists path);
                Alcotest.(check (option (list string)))
                  "failed publish misses" None
                  (Store.load store ~stage:"ir" "fp-w");
                Alcotest.(check int) "store is consistent (no entries)" 0
                  (Store.entry_count store));
            Alcotest.(check (list string)) "no stray tmp files" []
              (stray_tmp_files dir);
            (* Disarmed: the next save publishes normally. *)
            save_ok store ~stage:"ir" "fp-w" [ "artifact" ];
            load_expect store ~stage:"ir" "fp-w" (Some [ "artifact" ]))
      in
      check_count "fault.store.write" 1 (Stats.find snap "fault.store.write");
      Alcotest.(check int) "store.stores" 1 (Stats.find snap "store.stores"))

let source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   for (int i = 0; i < 40; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let invocation =
  { Invocation.default with Invocation.cache_enabled = true }

let test_cache_survives_restart () =
  (* The integration the store exists for: a store-backed Cache in a
     fresh process (fresh Store + Cache + Instance) serves a full-hit
     compile from disk, byte-identical to the cold one.  Under an armed
     fault matrix the hit/persistence assertions are relaxed (a fault is
     a legitimate miss), but compiles must still succeed and agree. *)
  let store_faults () =
    Fault.armed "store.read" || Fault.armed "store.write"
  in
  with_store_dir (fun dir ->
      let compile_once () =
        let cache = Cache.create ~store:(Store.create ~dir ()) () in
        let inst = Instance.create ~cache invocation in
        let c = Instance.compile inst source in
        if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
          Alcotest.failf "compile failed:\n%s"
            (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
        (c, Instance.stats inst)
      in
      let cold, cold_stats = compile_once () in
      Alcotest.(check bool) "cold is a miss" false cold.Instance.c_cache_hit;
      (* Five unit-granular stages plus the per-function families: one
         fnast per top-level slice (record's prototype and main), and
         fnir/fnoptir for the one slice producing declarations. *)
      if not (store_faults ()) then
        Alcotest.(check int) "cold persisted every stage" 9
          (Stats.find cold_stats "store.stores");
      let warm, warm_stats = compile_once () in
      if not (store_faults ()) then begin
        Alcotest.(check bool) "disk-warm is a hit" true
          warm.Instance.c_cache_hit;
        Alcotest.(check string) "every stage served from disk"
          "lex:hit pp:hit ast:hit ir:hit optir:hit"
          (Pipeline.render_trace warm.Instance.c_trace);
        Alcotest.(check bool) "store hits recorded" true
          (Stats.find warm_stats "store.hits" > 0)
      end;
      let ir c =
        Mc_ir.Printer.module_to_string (Option.get c.Instance.c_result.Driver.ir)
      in
      Alcotest.(check string) "byte-identical IR" (ir cold) (ir warm))

let test_lost_optir_entry_reruns_passes () =
  (* A store can lose any single entry independently (LRU eviction, a
     corruption unlink) — the nasty mix is every earlier stage hitting
     while optir misses: passes then re-run over the *unmarshalled* ir
     artifact, whose instruction ids this process never allocated.
     Regression test for an id collision found by the fault harness:
     pass-created instructions drew from a rewound counter and
     cross-wired the id-keyed def-use maps (IR verification failure
     after mem2reg).  Fixed by Ir.claim_ids on the codegen-hit path. *)
  let store_faults () =
    Fault.armed "store.read" || Fault.armed "store.write"
  in
  with_store_dir (fun dir ->
      let compile_once () =
        let cache = Cache.create ~store:(Store.create ~dir ()) () in
        let inst = Instance.create ~cache invocation in
        let c = Instance.compile inst source in
        if Mc_diag.Diagnostics.has_errors c.Instance.c_result.Driver.diag then
          Alcotest.failf "compile failed:\n%s"
            (Mc_diag.Diagnostics.render_all c.Instance.c_result.Driver.diag);
        c
      in
      let cold = compile_once () in
      (* Lose the post-pass entries, exactly as eviction would: the unit
         optir artifact and the per-function fnoptir ones (losing only
         the former would be served back by a relink from the latter). *)
      List.iter
        (fun stage ->
          let d =
            Filename.concat
              (Filename.concat dir (Printf.sprintf "v%d" Store.schema_version))
              stage
          in
          if Sys.file_exists d then
            Array.iter
              (fun f -> Sys.remove (Filename.concat d f))
              (Sys.readdir d))
        [ "optir"; "fnoptir" ];
      let warm = compile_once () in
      if not (store_faults ()) then
        Alcotest.(check string) "frontend from disk, passes re-run"
          "lex:hit pp:hit ast:hit ir:hit optir:run"
          (Pipeline.render_trace warm.Instance.c_trace);
      let ir c =
        Mc_ir.Printer.module_to_string
          (Option.get c.Instance.c_result.Driver.ir)
      in
      Alcotest.(check string) "byte-identical IR after re-running passes"
        (ir cold) (ir warm))

let test_batch_domains_share_store () =
  (* Batch worker domains write through one store-backed cache; a fresh
     cache over the same directory then serves the whole batch warm. *)
  let store_faults () =
    Fault.armed "store.read" || Fault.armed "store.write"
  in
  with_store_dir (fun dir ->
      let inputs =
        List.init 6 (fun i ->
            ( Printf.sprintf "u%d.c" i,
              Printf.sprintf
                "void record(long x);\nint main(void) { long s = 0;\n\
                 for (int i = 0; i < %d; i += 1) s += i;\nrecord(s);\nreturn 0; }"
                (10 + i) ))
      in
      let cache = Cache.create ~store:(Store.create ~dir ()) () in
      let cold = Batch.compile ~jobs:2 ~cache ~invocation inputs in
      Alcotest.(check bool) "cold all ok" true (Batch.all_ok cold);
      Alcotest.(check int) "cold: no hits" 0 (Batch.hits cold);
      let fresh = Cache.create ~store:(Store.create ~dir ()) () in
      let warm = Batch.compile ~jobs:2 ~cache:fresh ~invocation inputs in
      Alcotest.(check bool) "warm all ok" true (Batch.all_ok warm);
      if not (store_faults ()) then
        Alcotest.(check int) "warm: all hits from disk" (List.length inputs)
          (Batch.hits warm))

let suite =
  [
    tc "round-trip and restart adoption" test_roundtrip_and_restart;
    tc "corrupt entries are misses" test_corruption_is_a_miss;
    tc "schema-version mismatch rejects" test_schema_version_mismatch;
    tc "LRU eviction order" test_eviction_order;
    tc "concurrent writers publish atomically" test_concurrent_writers;
    tc "read fault is a counted miss, entry intact"
      test_read_fault_is_a_counted_miss;
    tc "write fault publishes nothing" test_write_fault_publishes_nothing;
    tc "store-backed cache survives restart" test_cache_survives_restart;
    tc "lost optir entry re-runs passes on cached ir"
      test_lost_optir_entry_reruns_passes;
    tc "batch domains share one store" test_batch_domains_share_store;
  ]
