(* OpenMPIRBuilder tests: the Fig. 10 skeleton, CanonicalLoopInfo
   invariants, and the loop transformations at the IR level (executed
   through the interpreter to check semantics). *)

open Helpers
open Mc_ir.Ir
module B = Mc_ir.Builder
module Ob = Mc_ompbuilder.Omp_builder
module Cli = Mc_ompbuilder.Cli
module Interp = Mc_interp.Interp
module Verifier = Mc_ir.Verifier

(* Builds main() that runs a canonical loop recording [base + iv], applies
   [transform], and returns the interpreter trace. *)
let run_loop ?(trip = 10) ~transform () =
  let m = create_module "t" in
  let record = declare_function m ~name:"record" ~ret:Void
      ~args:[ mk_arg ~name:"x" ~ty:I64 ] in
  ignore record;
  let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let cli =
    Ob.create_canonical_loop b ~trip_count:(i32_const trip)
      ~body_gen:(fun b iv ->
        let wide = B.cast b Sext iv I64 in
        ignore (B.call b ~ret:Void (Runtime "record") [ wide ]))
      ()
  in
  transform b cli;
  B.ret b (Some (i32_const 0));
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "IR invalid after transform:\n%s" e);
  let outcome = Interp.run_main m in
  List.map (function Interp.T_int v -> v | Interp.T_float _ -> -1L)
    outcome.Interp.trace

let expect_ints what expected got =
  Alcotest.(check (list int64)) what (List.map Int64.of_int expected) got

(* ---- Fig. 10: the skeleton ------------------------------------------------ *)

let test_skeleton_blocks () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let cli =
    Ob.create_canonical_loop b ~trip_count:(i32_const 128)
      ~body_gen:(fun _ _ -> ())
      ()
  in
  B.ret b None;
  Alcotest.(check (list string))
    "the seven skeleton blocks of Fig. 10"
    [ "omp_loop.preheader"; "omp_loop.header"; "omp_loop.cond"; "omp_loop.body";
      "omp_loop.inc"; "omp_loop.exit"; "omp_loop.after" ]
    (Cli.block_names cli);
  (match Cli.verify cli with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants violated: %s" e);
  (* Identifiable trip count and induction variable, without SCEV. *)
  Alcotest.(check bool) "trip count identifiable" true
    (value_equal cli.Cli.cli_trip_count (i32_const 128));
  match cli.Cli.cli_iv.i_kind with
  | Phi _ -> ()
  | _ -> Alcotest.fail "induction variable must be the header phi"

let test_invariants_enforced () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let cli =
    Ob.create_canonical_loop b ~trip_count:(i32_const 4)
      ~body_gen:(fun _ _ -> ())
      ()
  in
  B.ret b None;
  (* Sabotage: extra instruction in the cond block. *)
  B.set_insertion_point b cli.Cli.cli_cond;
  let junk = mk_inst ~ty:I32 (Binop (Add, i32_const 1, i32_const 2)) in
  append_inst cli.Cli.cli_cond junk;
  (match Cli.verify cli with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verify should reject a polluted cond block");
  (* Invalidation. *)
  set_block_insts cli.Cli.cli_cond
    (List.filter (fun i -> not (i == junk)) (block_insts cli.Cli.cli_cond));
  (match Cli.verify cli with Ok () -> () | Error e -> Alcotest.failf "rollback: %s" e);
  Cli.invalidate cli;
  match Cli.verify cli with
  | Error e -> check_contains ~what:"invalidated" e "invalidated"
  | Ok () -> Alcotest.fail "invalidated handle must not verify"

(* ---- execution semantics of the transformations --------------------------- *)

let test_plain_loop_runs () =
  expect_ints "0..9" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (run_loop ~transform:(fun _ _ -> ()) ())

let test_zero_trip () =
  expect_ints "empty" [] (run_loop ~trip:0 ~transform:(fun _ _ -> ()) ())

let test_tile_preserves_order_semantics () =
  let got =
    run_loop ~trip:10 ~transform:(fun b cli ->
        ignore (Ob.tile_loops b [ cli ] ~sizes:[ i32_const 4 ]))
      ()
  in
  (* 1-D tiling does not reorder iterations. *)
  expect_ints "tiled 0..9" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] got

let test_tile_returns_2n_loops () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let cli =
    Ob.create_canonical_loop b ~trip_count:(i32_const 16)
      ~body_gen:(fun _ _ -> ())
      ()
  in
  let generated = Ob.tile_loops b [ cli ] ~sizes:[ i32_const 4 ] in
  B.ret b None;
  Alcotest.(check int) "2n loops" 2 (List.length generated);
  Alcotest.(check bool) "input invalidated" false (Cli.is_valid cli);
  List.iter
    (fun g ->
      match Cli.verify g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "generated loop invalid: %s" e)
    generated;
  match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "module invalid: %s" e

let test_unroll_partial_returns_floor () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let cli =
    Ob.create_canonical_loop b ~trip_count:(i32_const 10)
      ~body_gen:(fun _ _ -> ())
      ()
  in
  let floor_cli = Ob.unroll_loop_partial b cli ~factor:4 in
  B.ret b None;
  (match Cli.verify floor_cli with
  | Ok () -> ()
  | Error e -> Alcotest.failf "floor loop invalid: %s" e);
  (* The inner tile loop carries the unroll metadata. *)
  let tagged =
    List.filter (fun blk -> blk.b_loop_md.md_unroll = Some (Unroll_count 4)) f.f_blocks
  in
  Alcotest.(check int) "one tagged latch" 1 (List.length tagged)

let test_unroll_partial_semantics () =
  expect_ints "unroll(3) of 0..9" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (run_loop ~trip:10
       ~transform:(fun b cli -> ignore (Ob.unroll_loop_partial b cli ~factor:3))
       ())

let test_unroll_full_tags_metadata () =
  let got =
    run_loop ~trip:5 ~transform:(fun b cli -> Ob.unroll_loop_full b cli) ()
  in
  expect_ints "full unroll keeps semantics" [ 0; 1; 2; 3; 4 ] got

let test_collapse () =
  (* Nested 3x4 via nested create_canonical_loop, collapsed to 12. *)
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let inner_ref = ref None in
  let outer =
    Ob.create_canonical_loop b ~name:"outer" ~trip_count:(i32_const 3)
      ~body_gen:(fun b iv_out ->
        let inner =
          Ob.create_canonical_loop b ~name:"inner" ~trip_count:(i32_const 4)
            ~body_gen:(fun b iv_in ->
              let ten = B.mul b iv_out (i32_const 10) in
              let v = B.add b ten iv_in in
              ignore (B.call b ~ret:Void (Runtime "record") [ B.cast b Sext v I64 ]))
            ()
        in
        inner_ref := Some inner)
      ()
  in
  let collapsed = Ob.collapse_loops b [ outer; Option.get !inner_ref ] in
  B.ret b (Some (i32_const 0));
  (match Cli.verify collapsed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "collapsed invalid: %s" e);
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "module invalid: %s" e);
  let outcome = Interp.run_main m in
  let got =
    List.map (function Interp.T_int v -> v | _ -> -1L) outcome.Interp.trace
  in
  expect_ints "row-major order preserved"
    [ 0; 1; 2; 3; 10; 11; 12; 13; 20; 21; 22; 23 ]
    got

let test_stripe_preserves_order () =
  (* Strip-mining alone never reorders; sizes that don't divide (4) and
     that exceed (50) the trip count are both exercised. *)
  List.iter
    (fun size ->
      let got =
        run_loop ~trip:10
          ~transform:(fun b cli ->
            ignore (Ob.stripe_loops b [ cli ] ~sizes:[ i32_const size ]))
          ()
      in
      expect_ints
        (Printf.sprintf "striped by %d keeps 0..9" size)
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        got)
    [ 1; 3; 4; 50 ]

let test_stripe_nest_preserves_order () =
  (* A 4x5 nest striped (2, 3): grid/stripe pairs stay adjacent, so the
     row-major visit order is untouched — the difference from tileLoops. *)
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let inner_ref = ref None in
  let outer =
    Ob.create_canonical_loop b ~name:"outer" ~trip_count:(i32_const 4)
      ~body_gen:(fun b iv_out ->
        let inner =
          Ob.create_canonical_loop b ~name:"inner" ~trip_count:(i32_const 5)
            ~body_gen:(fun b iv_in ->
              let ten = B.mul b iv_out (i32_const 10) in
              let v = B.add b ten iv_in in
              ignore (B.call b ~ret:Void (Runtime "record") [ B.cast b Sext v I64 ]))
            ()
        in
        inner_ref := Some inner)
      ()
  in
  let inner = Option.get !inner_ref in
  let generated =
    Ob.stripe_loops b [ outer; inner ] ~sizes:[ i32_const 2; i32_const 3 ]
  in
  B.ret b (Some (i32_const 0));
  Alcotest.(check int) "2n loops" 4 (List.length generated);
  Alcotest.(check bool) "inputs invalidated" false
    (Cli.is_valid outer || Cli.is_valid inner);
  List.iter
    (fun g ->
      match Cli.verify g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "generated loop invalid: %s" e)
    generated;
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "module invalid: %s" e);
  let outcome = Interp.run_main m in
  let got =
    List.map (function Interp.T_int v -> v | _ -> -1L) outcome.Interp.trace
  in
  expect_ints "row-major order preserved"
    (List.concat_map (fun i -> List.init 5 (fun j -> (i * 10) + j)) [ 0; 1; 2; 3 ])
    got

let test_fuse_interleaves_members () =
  (* Two sequential sibling loops of trips 3 and 5: the fused loop runs
     both bodies per iteration while both guards hold, then only the
     longer member's. *)
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let emit base trip =
    Ob.create_canonical_loop b ~trip_count:(i32_const trip)
      ~body_gen:(fun b iv ->
        let v = B.add b (i32_const base) iv in
        ignore (B.call b ~ret:Void (Runtime "record") [ B.cast b Sext v I64 ]))
      ()
  in
  let a = emit 100 3 in
  let c = emit 200 5 in
  let fused = Ob.fuse_loops b [ a; c ] in
  B.ret b (Some (i32_const 0));
  (match Cli.verify fused with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fused loop invalid: %s" e);
  Alcotest.(check bool) "inputs invalidated" false
    (Cli.is_valid a || Cli.is_valid c);
  (match Verifier.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "module invalid: %s" e);
  let outcome = Interp.run_main m in
  let got =
    List.map (function Interp.T_int v -> v | _ -> -1L) outcome.Interp.trace
  in
  expect_ints "interleaved, then the tail of the longer member"
    [ 100; 200; 101; 201; 102; 202; 203; 204 ]
    got

let test_workshare_covers_iteration_space () =
  (* Under the deterministic simulation, static worksharing must cover all
     iterations exactly once, in tid-then-iteration order = sorted. *)
  List.iter
    (fun threads ->
      let m = create_module "t" in
      let f = define_function m ~name:"main" ~ret:I32 ~args:[] in
      let entry = create_block ~name:"entry" f in
      let b = B.create () in
      B.set_insertion_point b entry;
      Ob.create_parallel b m ~name:"main" ~num_threads:(Some (i32_const threads))
        ~if_cond:None ~captures:[]
        ~body_gen:(fun b ~get_capture ->
          ignore get_capture;
          let cli =
            Ob.create_canonical_loop b ~trip_count:(i32_const 13)
              ~body_gen:(fun b iv ->
                ignore
                  (B.call b ~ret:Void (Runtime "record") [ B.cast b Sext iv I64 ]))
              ()
          in
          Ob.apply_static_workshare b cli ~chunk:None ~nowait:false);
      B.ret b (Some (i32_const 0));
      (match Verifier.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "module invalid: %s" e);
      let outcome = Interp.run_main m in
      let got =
        List.map (function Interp.T_int v -> v | _ -> -1L) outcome.Interp.trace
      in
      Alcotest.(check int)
        (Printf.sprintf "%d threads cover all" threads)
        13 (List.length got);
      let sorted = List.sort Int64.compare got in
      expect_ints "exactly 0..12" (List.init 13 Fun.id) sorted;
      f.f_is_decl <- false)
    [ 1; 2; 4; 13; 16 ]

let test_create_parallel_structure () =
  let m = create_module "t" in
  let f = define_function m ~name:"main" ~ret:Void ~args:[] in
  let entry = create_block ~name:"entry" f in
  let b = B.create () in
  B.set_insertion_point b entry;
  let shared = B.alloca b ~name:"shared" I64 in
  Ob.create_parallel b m ~name:"main" ~num_threads:None ~if_cond:None
    ~captures:[ shared ]
    ~body_gen:(fun b ~get_capture ->
      let p = get_capture 0 in
      let tid = B.call b ~ret:I32 (Runtime "omp_get_thread_num") [] in
      let old = B.load b I64 p in
      let w = B.cast b Sext tid I64 in
      B.store b (B.add b old w) ~ptr:p);
  let final = B.load b I64 shared in
  ignore (B.call b ~ret:Void (Runtime "record") [ final ]);
  B.ret b None;
  (* An outlined function taking (gtid, btid, context) must exist. *)
  let outlined =
    List.filter (fun fn -> fn.f_name <> "main" && not fn.f_is_decl) m.m_funcs
  in
  Alcotest.(check int) "one outlined function" 1 (List.length outlined);
  Alcotest.(check int) "three implicit params" 3
    (List.length (List.hd outlined).f_args);
  let outcome = Interp.run_main m in
  match outcome.Interp.trace with
  | [ Interp.T_int v ] -> Alcotest.(check int64) "sum of tids 0..3" 6L v
  | _ -> Alcotest.fail "expected one record"

let suite =
  [
    tc "Fig 10: skeleton block structure" test_skeleton_blocks;
    tc "CanonicalLoopInfo invariants enforced" test_invariants_enforced;
    tc "canonical loop executes" test_plain_loop_runs;
    tc "zero-trip canonical loop" test_zero_trip;
    tc "tileLoops preserves semantics" test_tile_preserves_order_semantics;
    tc "tileLoops returns 2n valid loops" test_tile_returns_2n_loops;
    tc "unrollLoopPartial returns the floor loop" test_unroll_partial_returns_floor;
    tc "unrollLoopPartial preserves semantics" test_unroll_partial_semantics;
    tc "unrollLoopFull tags metadata" test_unroll_full_tags_metadata;
    tc "collapseLoops preserves row-major order" test_collapse;
    tc "stripeLoops preserves iteration order" test_stripe_preserves_order;
    tc "stripeLoops: adjacent grid/stripe pairs on a nest"
      test_stripe_nest_preserves_order;
    tc "fuseLoops interleaves guarded members" test_fuse_interleaves_members;
    tc "createWorkshareLoop covers the space" test_workshare_covers_iteration_space;
    tc "createParallel outlining structure" test_create_parallel_structure;
  ]
