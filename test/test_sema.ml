(* Sema tests: type checking diagnostics, constant evaluation, canonical
   loop analysis (incl. the C2 and C3 paper claims), clause validation. *)

open Helpers
open Mc_ast.Tree
module Driver = Mc_core.Driver
module Visit = Mc_ast.Visit
module Const_eval = Mc_sema.Const_eval

let wrap_main body = "void record(long x);\nint main(void) {\n" ^ body ^ "\nreturn 0; }"

(* ---- plain C semantic errors ------------------------------------------- *)

let test_basic_errors () =
  expect_error ~substring:"use of undeclared identifier 'y'" (wrap_main "int x = y;");
  expect_error ~substring:"redefinition of 'x'" (wrap_main "int x = 1; int x = 2;");
  expect_error ~substring:"'break' outside of a loop" (wrap_main "break;");
  expect_error ~substring:"'continue' outside of a loop" (wrap_main "continue;");
  expect_error ~substring:"expected 2 argument(s), got 1"
    ("int add(int a, int b) { return a + b; }\n" ^ wrap_main "int x = add(1);");
  expect_error ~substring:"incomplete type 'void'" (wrap_main "void v;");
  expect_error ~substring:"called object type 'int' is not a function"
    (wrap_main "int x = 1; int y = x(2);");
  expect_error ~substring:"non-void function 'main' must return a value"
    "int main(void) { return; }";
  expect_error ~substring:"indirection requires pointer operand"
    (wrap_main "int x = 1; int y = *x;");
  expect_error ~substring:"subscripted value"
    (wrap_main "int x = 1; int y = x[0];")

let test_switch_sema () =
  expect_error ~substring:"'case' label outside of a switch"
    (wrap_main "case 1: record(1);");
  expect_error ~substring:"'default' label outside of a switch"
    (wrap_main "default: record(1);");
  expect_error ~substring:"duplicate case value 3"
    (wrap_main "switch (1) { case 3: record(1); break; case 3: record(2); }");
  expect_error ~substring:"case value must be an integer constant"
    (wrap_main "int n = 2;\nswitch (1) { case n: record(1); }");
  expect_error ~substring:"multiple 'default' labels"
    (wrap_main "switch (1) { default: record(1); break; default: record(2); }");
  expect_error ~substring:"switch condition must have integer type"
    (wrap_main "double d = 1.0;\nswitch (d) { case 1: record(1); }");
  expect_error ~substring:"'continue' outside of a loop"
    (wrap_main "switch (1) { case 1: continue; }")

let test_scoping () =
  (* Inner scopes shadow and expire. *)
  let trace =
    trace_of
      (wrap_main
         "int x = 1;\n{ int x = 2; record(x); }\nrecord(x);")
  in
  Alcotest.(check string) "shadowing" "2;1" (trace_to_string trace);
  expect_error ~substring:"use of undeclared identifier 'inner'"
    (wrap_main "{ int inner = 1; } record(inner);")

let test_conversions_inserted () =
  let diag, tu =
    Driver.frontend "double f(void) { int i = 3; return i; }"
  in
  Alcotest.(check bool) "no errors" false (Mc_diag.Diagnostics.has_errors diag);
  let dump = Mc_ast.Dump.translation_unit tu in
  check_contains ~what:"int->double" dump "IntegralToFloating";
  check_contains ~what:"lvalue load" dump "LValueToRValue"

(* ---- constant evaluation -------------------------------------------------- *)

let eval_expr source =
  (* Builds "int x = <expr>;" and const-evals the initialiser. *)
  let diag, tu = Driver.frontend ("int main(void) { long x = " ^ source ^ "; return 0; }") in
  if Mc_diag.Diagnostics.has_errors diag then
    Alcotest.failf "const-eval source failed:\n%s" (Mc_diag.Diagnostics.render_all diag);
  let result = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_var:(fun v ->
            if v.v_name = "x" then
              result := Option.map Const_eval.eval_int v.v_init)
          body
      | _ -> ())
    tu.tu_decls;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "variable x not found"

let test_const_eval () =
  let check name src expected =
    Alcotest.(check (option int64)) name expected (eval_expr src)
  in
  check "arith" "2 + 3 * 4" (Some 14L);
  check "parens" "(2 + 3) * 4" (Some 20L);
  check "shift" "1 << 10" (Some 1024L);
  check "cmp" "3 < 5" (Some 1L);
  check "ternary" "0 ? 10 : 20" (Some 20L);
  check "logical shortcut" "1 || (1 / 0)" (Some 1L);
  check "division by zero" "1 / 0" None;
  check "unary" "-(5) + +3" (Some (-2L));
  check "bitwise" "(0xF0 | 0x0F) & 0x3C" (Some 0x3CL);
  check "sizeof" "sizeof(double)" (Some 8L);
  check "char" "'A'" (Some 65L);
  check "i32 wrap" "2147483647 + 1" (Some (-2147483648L));
  check "comma" "(1, 2)" (Some 2L)

(* ---- canonical loop analysis ---------------------------------------------- *)

let test_canonical_rejections () =
  let pragma body =
    "void record(long x);\nint main(void) {\n#pragma omp for\n" ^ body
    ^ "\nreturn 0; }"
  in
  expect_error ~substring:"expected 1 nested canonical for loop" (pragma "record(1);");
  expect_error ~substring:"initialization of an OpenMP canonical loop"
    (pragma "for (; 0 < 1;) record(1);");
  expect_error ~substring:"requires a condition"
    (pragma "for (int i = 0; ; i += 1) record(i);");
  expect_error ~substring:"requires an increment"
    (pragma "for (int i = 0; i < 4;) record(i);");
  expect_error ~substring:"compare the iteration variable"
    (pragma "for (int i = 0; 1; i += 1) record(i);");
  expect_error ~substring:"advance the iteration variable"
    (pragma "for (int i = 0; i < 8; i *= 2) record(i);");
  expect_error ~substring:"incompatible with its condition"
    (pragma "for (int i = 0; i < 8; i -= 1) record(i);");
  expect_error ~substring:"'!=' loop condition requires a constant step of 1"
    (pragma "for (int i = 0; i != 8; i += 2) record(i);");
  (* Deeper nests. *)
  expect_error ~substring:"nested canonical for loop"
    ("void record(long x);\nint main(void) {\n#pragma omp for collapse(2)\n\
      for (int i = 0; i < 4; i += 1) record(i);\nreturn 0; }")

let test_canonical_accepted_forms () =
  (* All the init/cond/incr spellings the OpenMP spec allows. *)
  List.iter
    (fun loop ->
      let src = wrap_main ("#pragma omp for\n" ^ loop) in
      let diag, _ = Driver.frontend src in
      if Mc_diag.Diagnostics.has_errors diag then
        Alcotest.failf "rejected canonical loop %s:\n%s" loop
          (Mc_diag.Diagnostics.render_all diag))
    [
      "for (int i = 0; i < 10; i += 1) record(i);";
      "for (int i = 0; i < 10; ++i) record(i);";
      "for (int i = 0; i < 10; i++) record(i);";
      "for (int i = 0; 10 > i; i = i + 1) record(i);";
      "for (int i = 0; i <= 9; i = 1 + i) record(i);";
      "for (int i = 9; i >= 0; i -= 1) record(i);";
      "for (int i = 9; i > -1; --i) record(i);";
      "for (int i = 0; i != 10; i += 1) record(i);";
      "for (long i = 0; i < 10; i += 3) record(i);";
      "for (unsigned i = 0; i < 10u; i += 1) record(i);";
    ]

(* C3: trip count of the INT32_MIN..INT32_MAX loop is 0xfffffffe, which
   requires the unsigned logical counter. *)
let test_trip_count_extremes () =
  let diag, tu =
    Driver.frontend ~options:irbuilder
      "void record(long x);\nint main(void) {\n#pragma omp unroll partial(2)\n\
       for (int i = -2147483647 - 1; i < 2147483647; ++i) record(i);\nreturn 0; }"
  in
  Alcotest.(check bool) "accepted" false (Mc_diag.Diagnostics.has_errors diag);
  (* Find the OMPCanonicalLoop and const-eval its distance expression. *)
  let found = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:true
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_canonical_loop ocl -> found := Some ocl
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  match !found with
  | None -> Alcotest.fail "no canonical loop"
  | Some ocl -> (
    match ocl.ocl_distance.cap_body.s_kind with
    | Expr_stmt { e_kind = Assign (None, _, rhs); _ } -> (
      match Const_eval.eval_int rhs with
      | Some v ->
        (* The count is 0xffffffff (the paper's prose says 0xfffffffe, an
           off-by-one: INT32_MAX - INT32_MIN = 2^32 - 1); either way it
           does not fit a 32-bit *signed* integer, which is the point. *)
        Alcotest.(check string)
          "0xffffffff iterations" "4294967295"
          (Mc_support.Int_ops.to_string Mc_support.Int_ops.u32 v)
      | None -> Alcotest.fail "distance should be a constant here")
    | _ -> Alcotest.fail "unexpected distance body shape")

(* C2: the '.capture_expr.' internal name leaks into shadow AST temporaries,
   as the paper's diagnostic excerpt shows. *)
let test_capture_expr_leak () =
  let diag, tu =
    Driver.frontend
      "void record(long x);\nint main(void) { int n = 100;\n\
       #pragma omp tile sizes(4)\n\
       for (int i = 0; i < n; i += 1) record(i);\nreturn 0; }"
  in
  Alcotest.(check bool) "ok" false (Mc_diag.Diagnostics.has_errors diag);
  let names = ref [] in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:true ~on_var:(fun v -> names := v.v_name :: !names) body
      | _ -> ())
    tu.tu_decls;
  Alcotest.(check bool) "leaky internal name present" true
    (List.mem ".capture_expr." !names);
  (* ... and it is implicit, so the default dump does not show it, but the
     shadow dump does. *)
  let dump_shadow = Mc_ast.Dump.translation_unit ~shadow:true tu in
  check_contains ~what:"shadow dump shows it" dump_shadow ".capture_expr."

(* ---- clause validation ------------------------------------------------------ *)

let test_clause_validation () =
  expect_error ~substring:"'tile' requires a 'sizes' clause"
    (wrap_main "#pragma omp tile\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"clause 'OMPFullClause' is not valid on directive"
    (wrap_main "#pragma omp for full\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"clause 'OMPScheduleClause' is not valid on directive"
    (wrap_main
       "#pragma omp unroll schedule(static)\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"must be positive"
    (wrap_main "#pragma omp unroll partial(0)\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"must be a constant integer"
    (wrap_main
       "int n = 3;\n#pragma omp tile sizes(n)\nfor (int i = 0; i < 4; i += 1) record(i);");
  (* A standalone barrier is fine; it must not consume a statement. *)
  let diag, _ =
    Mc_core.Driver.frontend (wrap_main "#pragma omp barrier\nrecord(1);")
  in
  Alcotest.(check bool) "standalone barrier ok" false
    (Mc_diag.Diagnostics.has_errors diag)

(* Consuming a transformation that generates no loop is rejected in both
   modes (paper §2.2 / §3). *)
let test_consumed_full_unroll_rejected () =
  let src =
    wrap_main
      "#pragma omp for\n#pragma omp unroll full\nfor (int i = 0; i < 4; i += 1) record(i);"
  in
  expect_error ~options:classic ~substring:"cannot be associated" src;
  expect_error ~options:irbuilder ~substring:"cannot be associated" src;
  let src_heuristic =
    wrap_main
      "#pragma omp for\n#pragma omp unroll\nfor (int i = 0; i < 4; i += 1) record(i);"
  in
  expect_error ~options:classic ~substring:"cannot be associated" src_heuristic;
  expect_error ~options:irbuilder ~substring:"cannot be associated" src_heuristic

(* Shadow-AST construction facts from §2. *)
let test_shadow_structure () =
  let diag, tu =
    Driver.frontend
      "void body(int i);\nint main(void) {\n#pragma omp unroll partial(2)\n\
       for (int i = 7; i < 17; i += 3) body(i);\nreturn 0; }"
  in
  Alcotest.(check bool) "ok" false (Mc_diag.Diagnostics.has_errors diag);
  let d = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive dir when dir.dir_kind = D_unroll -> d := Some dir
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  match !d with
  | None -> Alcotest.fail "no unroll directive"
  | Some dir -> (
    match Mc_sema.Omp_sema.transformed_stmt dir with
    | None -> Alcotest.fail "partial unroll must have a transformed AST"
    | Some tr ->
      let dump = Mc_ast.Dump.stmt tr in
      (* Fig. 7's essential shape: an outer ForStmt over the unrolled iv,
         an AttributedStmt with LoopHintAttr UnrollCount, an inner ForStmt. *)
      check_contains ~what:"outer iv" dump ".unrolled.iv.i";
      check_contains ~what:"hint" dump "LoopHintAttr Implicit loop UnrollCount Numeric";
      check_contains ~what:"inner iv" dump ".unroll_inner.iv.i";
      (* No body duplication in the AST: exactly one CallExpr. *)
      let calls = ref 0 in
      Visit.iter ~shadow:true
        ~on_expr:(fun e -> match e.e_kind with Call _ -> incr calls | _ -> ())
        tr;
      Alcotest.(check int) "no duplication before mid-end" 1 !calls)

let test_full_unroll_has_no_transformed () =
  let diag, tu =
    Driver.frontend
      "void body(int i);\nint main(void) {\n#pragma omp unroll full\n\
       for (int i = 0; i < 4; i += 1) body(i);\nreturn 0; }"
  in
  Alcotest.(check bool) "ok" false (Mc_diag.Diagnostics.has_errors diag);
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive dir when dir.dir_kind = D_unroll ->
              Alcotest.(check bool)
                "full unroll generates no loop" true
                (Mc_sema.Omp_sema.transformed_stmt dir = None)
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls

(* OpenMP 6.0 preview directives: structure and diagnostics. *)
let test_omp60_sema () =
  expect_error ~substring:"'fuse' requires a compound statement"
    (wrap_main "#pragma omp fuse\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"must name each loop position"
    (wrap_main
       "#pragma omp interchange permutation(1, 1)\n\
        for (int i = 0; i < 2; i += 1)\nfor (int j = 0; j < 2; j += 1) record(i + j);");
  expect_error ~substring:"clause 'OMPPermutationClause' is not valid"
    (wrap_main
       "#pragma omp reverse permutation(1)\nfor (int i = 0; i < 2; i += 1) record(i);");
  (* reverse produces a generated loop, so it is consumable; its transformed
     AST exists in classic mode. *)
  let diag, tu =
    Driver.frontend
      (wrap_main
         "#pragma omp reverse\nfor (int i = 0; i < 4; i += 1) record(i);")
  in
  Alcotest.(check bool) "reverse ok" false (Mc_diag.Diagnostics.has_errors diag);
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive dir when dir.dir_kind = D_reverse ->
              Alcotest.(check bool) "reverse has transformed AST" true
                (dir.dir_transformed <> None)
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls

(* OpenMP 6.0 stripe: clause requirements, the generated shadow AST with
   adjacent grid/stripe pairs, and located rejection of shallow nests. *)
let test_stripe_sema () =
  expect_error ~substring:"'stripe' requires a 'sizes' clause"
    (wrap_main "#pragma omp stripe\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"must be positive"
    (wrap_main
       "#pragma omp stripe sizes(0)\nfor (int i = 0; i < 4; i += 1) record(i);");
  expect_error ~substring:"nested canonical for loop(s)"
    (wrap_main
       "#pragma omp stripe sizes(2, 2)\n\
        for (int i = 0; i < 4; i += 1) record(i);");
  let diag, tu =
    Driver.frontend
      (wrap_main
         "#pragma omp stripe sizes(3)\nfor (int i = 0; i < 7; i += 1) record(i);")
  in
  Alcotest.(check bool) "stripe ok" false (Mc_diag.Diagnostics.has_errors diag);
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive dir when dir.dir_kind = D_stripe -> (
              match dir.dir_transformed with
              | None -> Alcotest.fail "stripe must have a transformed AST"
              | Some tr ->
                let dump = Mc_ast.Dump.stmt tr in
                check_contains ~what:"grid iv" dump ".stripe_grid.0.iv.i";
                check_contains ~what:"stripe iv" dump ".stripe.0.iv.i")
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls

(* A malformed clause must be diagnosed exactly once, on both lowering
   paths (the classic path used to validate the permutation twice). *)
let test_malformed_clause_diagnosed_once () =
  let count_occurrences haystack needle =
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length haystack then acc
      else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  let source =
    wrap_main
      "#pragma omp interchange permutation(1, 1)\n\
       for (int i = 0; i < 2; i += 1)\n\
       for (int j = 0; j < 2; j += 1) record(i + j);"
  in
  List.iter
    (fun options ->
      let diag, _ = Driver.frontend ~options source in
      let rendered = Mc_diag.Diagnostics.render_all diag in
      Alcotest.(check int)
        "one diagnostic per malformed permutation" 1
        (count_occurrences rendered "must name each loop position"))
    [ Helpers.classic; Helpers.irbuilder ]

(* Paper §2: (a) a consuming directive re-analyses the transformed AST and
   rejects it when it is not a deep-enough canonical nest; (b) the
   suggested "history" note points back at the transformation. *)
let test_transform_history_note () =
  let source =
    wrap_main
      "#pragma omp for collapse(2)\n#pragma omp unroll partial(2)\n\
       for (int i = 0; i < 8; i += 1) record(i);"
  in
  let diag, _ = Driver.frontend source in
  Alcotest.(check bool) "rejected" true (Mc_diag.Diagnostics.has_errors diag);
  let rendered = Mc_diag.Diagnostics.render_all diag in
  check_contains ~what:"note" rendered
    "note: within the loop generated by '#pragma omp unroll' here"

let suite =
  [
    tc "basic type errors" test_basic_errors;
    tc "scoping" test_scoping;
    tc "switch semantic checks" test_switch_sema;
    tc "implicit conversions inserted" test_conversions_inserted;
    tc "constant evaluation" test_const_eval;
    tc "canonical loop rejections" test_canonical_rejections;
    tc "canonical loop accepted forms" test_canonical_accepted_forms;
    tc "C3: INT32_MIN..INT32_MAX trip count" test_trip_count_extremes;
    tc "C2: .capture_expr. internal name" test_capture_expr_leak;
    tc "clause validation" test_clause_validation;
    tc "consumed full/heuristic unroll rejected" test_consumed_full_unroll_rejected;
    tc "Fig 7: shadow unroll structure" test_shadow_structure;
    tc "full unroll has no transformed stmt" test_full_unroll_has_no_transformed;
    tc "OpenMP 6.0 preview directives" test_omp60_sema;
    tc "OpenMP 6.0 stripe: clauses and shadow AST" test_stripe_sema;
    tc "malformed clause diagnosed exactly once" test_malformed_clause_diagnosed_once;
    tc "transformation-history note (paper section 2)" test_transform_history_note;
  ]
