(* The reentrant-driver and batch-compilation suite: Invocation parsing
   and shims, Instance registry isolation, the once-per-instance exit
   reports, and the determinism guarantee — 1 domain vs N domains must
   produce byte-identical IR printouts and identical stats snapshots. *)

open Helpers
module Driver = Mc_core.Driver
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Batch = Mc_core.Batch
module Stats = Mc_support.Stats

let unit_source n trip =
  Printf.sprintf
    "void record(long x);\nint main(void) {\nlong s = 0;\n\
     #pragma omp parallel for schedule(dynamic, 2)\n\
     #pragma omp unroll partial(%d)\n\
     for (int i = 0; i < %d; i += 1) s += i;\nrecord(s);\nreturn 0; }"
    (1 + (n mod 3))
    trip

let units count =
  List.init count (fun i -> (Printf.sprintf "unit%d.c" i, unit_source i (20 + i)))

(* ---- Invocation ------------------------------------------------------- *)

let test_invocation_of_argv () =
  let inv =
    match
      Invocation.of_argv
        [|
          "mcc"; "-j"; "4"; "--cache"; "-fsyntax-only"; "-DN=3"; "-D"; "M=7";
          "-O0"; "-ftime-report"; "a.c"; "b.c";
        |]
    with
    | Ok inv -> inv
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check int) "jobs" 4 inv.Invocation.jobs;
  Alcotest.(check bool) "cache" true inv.Invocation.cache_enabled;
  Alcotest.(check bool) "action" true
    (inv.Invocation.action = Invocation.Syntax_only);
  Alcotest.(check (list (pair string string))) "defines"
    [ ("N", "3"); ("M", "7") ]
    inv.Invocation.defines;
  Alcotest.(check int) "opt level" 0 inv.Invocation.opt_level;
  Alcotest.(check bool) "time report" true inv.Invocation.time_report;
  Alcotest.(check (list string)) "inputs in order" [ "a.c"; "b.c" ]
    (List.map Invocation.input_name inv.Invocation.inputs);
  (* -syntax-only and -fsyntax-only are synonyms; -jN attaches. *)
  (match Invocation.of_argv [| "mcc"; "-syntax-only"; "-j8"; "x.c" |] with
  | Ok inv ->
    Alcotest.(check bool) "syntax-only synonym" true
      (inv.Invocation.action = Invocation.Syntax_only);
    Alcotest.(check int) "attached -j8" 8 inv.Invocation.jobs
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Invocation.of_argv [| "mcc" |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no inputs must be rejected");
  match Invocation.of_argv [| "mcc"; "-walrus"; "x.c" |] with
  | Error e -> check_contains ~what:"unknown flag" e "walrus"
  | Ok _ -> Alcotest.fail "unknown flag must be rejected"

let test_driver_options_shim () =
  let options =
    { irbuilder with Driver.fold = false; defines = [ ("K", "2") ] }
  in
  let inv = Invocation.of_driver_options options in
  Alcotest.(check bool) "round-trips" true
    (Invocation.to_driver_options inv = options);
  (* The default invocation maps onto the default driver options. *)
  Alcotest.(check bool) "defaults agree" true
    (Invocation.to_driver_options Invocation.default = Driver.default_options)

(* ---- Instance --------------------------------------------------------- *)

let test_instance_registry_isolation () =
  (* Two instances compile different sources; each snapshot sees its own
     compile only, and the default registry is untouched throughout. *)
  Stats.reset ();
  let baseline = Stats.snapshot () in
  let a = Instance.create Invocation.default in
  let b = Instance.create Invocation.default in
  (* b's source carries an extra helper function, so b lexes strictly
     more tokens than a (a differing literal alone would not: "10" and
     "200" are one token each). *)
  let ra = (Instance.compile a ~name:"a.c" (unit_source 0 10)).Instance.c_result in
  let rb =
    (Instance.compile b ~name:"b.c"
       (unit_source 0 200 ^ "\nlong helper(long x) { return x + 1; }"))
      .Instance.c_result
  in
  Alcotest.(check bool) "a compiled" true (ra.Driver.ir <> None);
  Alcotest.(check bool) "b compiled" true (rb.Driver.ir <> None);
  let steps snap = Stats.find snap "lexer.tokens-lexed" in
  Alcotest.(check bool) "instances differ" true
    (steps (Instance.stats a) < steps (Instance.stats b));
  Alcotest.(check (list (pair string int))) "default registry untouched"
    baseline (Stats.snapshot ());
  (* Interpreting through the instance charges the instance registry. *)
  (match Instance.run a ra with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "run failed: %s" e);
  Alcotest.(check bool) "interp counters in instance" true
    (Stats.find (Instance.stats a) "interp.steps-executed" > 0);
  Alcotest.(check int) "no interp counters in default registry" 0
    (Stats.find (Stats.snapshot ()) "interp.steps-executed")

let test_exit_reports_once () =
  let inv =
    { Invocation.default with Invocation.print_stats = true; time_report = true }
  in
  let inst = Instance.create inv in
  ignore (Instance.compile inst (unit_source 0 10));
  let first = Instance.exit_reports inst in
  check_contains ~what:"stats table" first "Statistics Collected";
  check_contains ~what:"time table" first "time report";
  Alcotest.(check string) "second take is empty" "" (Instance.exit_reports inst);
  (* Instances that requested nothing render nothing. *)
  let quiet = Instance.create Invocation.default in
  ignore (Instance.compile quiet (unit_source 0 10));
  Alcotest.(check string) "quiet instance" "" (Instance.exit_reports quiet)

(* ---- Batch determinism ------------------------------------------------ *)

let ir_printouts batch =
  List.map
    (fun u ->
      match u.Batch.u_result with
      | Ok r -> (
        match r.Driver.ir with
        | Some m -> Mc_ir.Printer.module_to_string m
        | None -> Alcotest.failf "%s: no IR" u.Batch.u_name)
      | Error f ->
        Alcotest.failf "%s: %s" u.Batch.u_name
          f.Instance.f_ice.Mc_support.Crash_recovery.ice_exn)
    batch.Batch.units

let test_batch_deterministic () =
  let inputs = units 8 in
  let invocation = Invocation.default in
  let seq = Batch.compile ~jobs:1 ~invocation inputs in
  let par = Batch.compile ~jobs:4 ~invocation inputs in
  Alcotest.(check int) "all units compiled" 8 (List.length par.Batch.units);
  Alcotest.(check (list string)) "input order preserved"
    (List.map fst inputs)
    (List.map (fun u -> u.Batch.u_name) par.Batch.units);
  (* Byte-identical IR printouts, unit by unit. *)
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "unit %d IR differs between 1 and 4 domains" i)
    (List.combine (ir_printouts seq) (ir_printouts par));
  (* Identical per-unit stats snapshots and identical merged snapshot. *)
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "unit %d stats" i)
        a.Batch.u_stats b.Batch.u_stats)
    (List.combine seq.Batch.units par.Batch.units);
  Alcotest.(check (list (pair string int))) "merged stats"
    seq.Batch.stats par.Batch.stats

let test_batch_irbuilder_deterministic () =
  (* The IRBuilder path gensyms outlined-function names; those must also
     be stable across domain counts. *)
  let inputs = units 4 in
  let invocation =
    { Invocation.default with Invocation.use_irbuilder = true }
  in
  let seq = Batch.compile ~jobs:1 ~invocation inputs in
  let par = Batch.compile ~jobs:4 ~invocation inputs in
  Alcotest.(check (list string)) "irbuilder IR identical"
    (ir_printouts seq) (ir_printouts par)

let test_batch_error_reporting () =
  let inputs =
    [
      ("good.c", unit_source 0 10);
      ("bad.c", "int main(void) { return undefined_var; }");
      ("also-good.c", unit_source 1 10);
    ]
  in
  let batch = Batch.compile ~jobs:3 ~invocation:Invocation.default inputs in
  Alcotest.(check bool) "batch not all ok" false (Batch.all_ok batch);
  (match batch.Batch.units with
  | [ g1; bad; g2 ] ->
    let ok u =
      match u.Batch.u_result with
      | Ok r -> not (Mc_diag.Diagnostics.has_errors r.Driver.diag)
      | Error _ -> false
    in
    Alcotest.(check bool) "first ok" true (ok g1);
    Alcotest.(check bool) "last ok" true (ok g2);
    (match bad.Batch.u_result with
    | Ok r ->
      check_contains ~what:"bad unit diagnostics"
        (Mc_diag.Diagnostics.render_all r.Driver.diag)
        "use of undeclared identifier"
    | Error f ->
      Alcotest.failf "expected diagnostics, got ICE: %s"
        f.Instance.f_ice.Mc_support.Crash_recovery.ice_exn)
  | _ -> Alcotest.fail "unit count");
  (* Failures in one unit never poison the others' results. *)
  Alcotest.(check int) "failing batch keeps order" 3
    (List.length batch.Batch.units)

let test_batch_compile_into_merges () =
  let inputs = units 3 in
  let inst = Instance.create Invocation.default in
  let batch = Batch.compile_into inst inputs in
  Alcotest.(check bool) "all ok" true (Batch.all_ok batch);
  (* The instance registry now holds the sum of all units. *)
  let merged = Instance.stats inst in
  Alcotest.(check (list (pair string int))) "instance = merged units"
    batch.Batch.stats merged;
  let total = Stats.find merged "codegen.functions-emitted" in
  Alcotest.(check bool) "summed across units" true (total >= 3)

let test_compile_and_run_through_instance () =
  let inst = Instance.create Invocation.default in
  match Instance.compile_and_run inst (unit_source 0 10) with
  | Ok outcome ->
    Alcotest.(check bool) "steps" true (outcome.Mc_interp.Interp.steps > 0)
  | Error e -> Alcotest.failf "failed: %s" e

let suite =
  [
    tc "invocation argv parsing" test_invocation_of_argv;
    tc "driver options shim round-trips" test_driver_options_shim;
    tc "instance registries are isolated" test_instance_registry_isolation;
    tc "exit reports render once per instance" test_exit_reports_once;
    tc "1 vs 4 domains: identical IR and stats" test_batch_deterministic;
    tc "irbuilder path deterministic too" test_batch_irbuilder_deterministic;
    tc "per-unit errors stay per-unit" test_batch_error_reporting;
    tc "compile_into merges into the instance" test_batch_compile_into_merges;
    tc "compile_and_run through an instance" test_compile_and_run_through_instance;
  ]
