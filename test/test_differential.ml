(* The differential-semantics oracle (Mc_fuzz.Differential): generated
   programs under the six loop-transformation directives must reproduce
   the trace of their pragma-stripped reference in every configuration,
   on the examples/ corpus and on fixed-seed generated programs; the
   campaign harness additionally checks batch (-j 1 vs -j N) and
   cold-vs-warm store determinism. *)

open Helpers
module Differential = Mc_fuzz.Differential
module Rng = Mc_fuzz.Fuzz.Rng

let test_strip_pragmas () =
  let src = "int main() {\n#pragma omp tile sizes(2)\nfor (;;) ;\n}\n" in
  let stripped = Differential.strip_pragmas src in
  Alcotest.(check bool) "pragma gone" false
    (contains_substring stripped "#pragma");
  Alcotest.(check bool) "loop kept" true (contains_substring stripped "for")

let test_generator_emits_valid_programs () =
  (* Every generated program (and its stripped reference) must compile
     cleanly: the oracle's mismatch reports may only ever be semantic. *)
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let source = Differential.gen_program rng in
    List.iter
      (fun s ->
        let diag, _ = Driver.frontend s in
        if Mc_diag.Diagnostics.has_errors diag then
          Alcotest.failf "generated program does not compile:\n%s\n%s" s
            (Mc_diag.Diagnostics.render_all diag))
      [ source; Differential.strip_pragmas source ]
  done

let test_fixed_seed_sweep () =
  (* The regression gate for the transformation semantics themselves:
     every configuration must match the pragma-stripped reference. *)
  let rng = Rng.create 42 in
  for i = 1 to 25 do
    let source = Differential.gen_program rng in
    match Differential.check_source source with
    | None -> ()
    | Some (config, detail) ->
      Alcotest.failf "program %d diverges under %s: %s\n%s" i config detail
        source
  done

let examples_dir = Filename.concat ".." "examples"

let test_examples_corpus () =
  (* The existing unroll/tile (and collapse/parallel-for) corpus: each
     example records only order-independent results, so stripping its
     pragmas must not change the trace. *)
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
  in
  if files = [] then Alcotest.fail "no .c examples found";
  List.iter
    (fun f ->
      let source =
        In_channel.with_open_text (Filename.concat examples_dir f)
          In_channel.input_all
      in
      match Differential.check_source source with
      | None -> ()
      | Some (config, detail) ->
        Alcotest.failf "%s diverges under %s: %s" f config detail)
    files

let test_campaign_infrastructure_axes () =
  (* A small end-to-end campaign: semantic sweep plus batch -j 1 vs -j 2
     and cold-vs-warm store determinism, all of which must be clean. *)
  let report = Differential.run ~jobs:[ 1; 2 ] ~n:6 ~seed:5 () in
  Alcotest.(check int) "all inputs checked" 6
    report.Differential.dm_total;
  match report.Differential.dm_mismatches with
  | [] -> ()
  | m :: _ ->
    Alcotest.failf "campaign found a mismatch: %s [%s]: %s\n%s"
      m.Differential.dm_name m.Differential.dm_config m.Differential.dm_detail
      m.Differential.dm_source

let test_scripted_oracle_fixed_seed () =
  (* The scripted-transformation oracle: a random transfo script per
     program must match its hand-pragma'd rendering byte-for-byte in IR
     and preserve the plain program's trace under checked application. *)
  let rng = Rng.create 42 in
  for i = 1 to 12 do
    let sc = Differential.gen_scripted rng ~name:(Printf.sprintf "s%d" i) in
    match Differential.check_scripted sc with
    | None -> ()
    | Some (config, detail) ->
      Alcotest.failf "scripted program %d diverges under %s: %s\n%s\n--\n%s" i
        config detail sc.Differential.sc_plain sc.Differential.sc_script
  done

let test_scripted_oracle_catches_divergence () =
  (* The oracle must flag a script that reorders an order-DEPENDENT
     accumulation, and the minimized reproducer must still fail. *)
  let sc =
    {
      Differential.sc_name = "order-dependent";
      sc_plain =
        "int main(void) {\n\
        \  int acc = 0;\n\
        \  for (int i = 1; i < 6; i += 1)\n\
        \    acc = acc * 2 + i;\n\
        \  record(acc);\n\
        \  return 0;\n\
         }\n";
      sc_pragma =
        "int main(void) {\n\
        \  int acc = 0;\n\
        \  #pragma omp reverse\n\
        \  for (int i = 1; i < 6; i += 1)\n\
        \    acc = acc * 2 + i;\n\
        \  record(acc);\n\
        \  return 0;\n\
         }\n";
      sc_script = "reverse @ for(i)\n";
    }
  in
  match Differential.check_scripted sc with
  | None -> Alcotest.fail "scripted oracle missed an order-dependent reverse"
  | Some (config, _) ->
    Alcotest.(check bool) "flagged by the checked application" true
      (contains_substring config "checked")

let test_mismatch_is_caught_and_minimized () =
  (* Sanity of the oracle itself: a program whose accumulation is order-
     DEPENDENT must be flagged (reverse changes the value), proving the
     oracle can see real divergence, and the minimizer must keep it
     failing while shrinking. *)
  let source =
    "void record(long x);\n\
     int main(void) {\n\
     int acc = 0;\n\
     #pragma omp reverse\n\
     for (int i = 1; i < 6; i += 1) acc = acc * 2 + i;\n\
     record(acc);\n\
     return 0; }\n"
  in
  (match Differential.check_source source with
  | Some _ -> ()
  | None -> Alcotest.fail "oracle missed an order-dependent divergence");
  let still s = Option.is_some (Differential.check_source s) in
  let minimized = Mc_fuzz.Fuzz.minimize ~still_fails:still source in
  Alcotest.(check bool) "minimized still diverges" true (still minimized);
  Alcotest.(check bool) "minimized is no larger" true
    (String.length minimized <= String.length source)

let suite =
  [
    tc "strip_pragmas removes only pragma lines" test_strip_pragmas;
    tc "generator emits valid programs" test_generator_emits_valid_programs;
    tc "fixed-seed sweep: all configurations agree" test_fixed_seed_sweep;
    tc "examples corpus: pragmas are trace-preserving" test_examples_corpus;
    tc "campaign: batch and store axes deterministic"
      test_campaign_infrastructure_axes;
    tc "oracle catches and minimizes real divergence"
      test_mismatch_is_caught_and_minimized;
    tc "scripted oracle: fixed-seed scripts match their pragmas"
      test_scripted_oracle_fixed_seed;
    tc "scripted oracle catches order-dependent scripts"
      test_scripted_oracle_catches_divergence;
  ]
