(* Unit tests for the shadow-AST constructions (Mc_sema.Shadow): the
   generated loop structures of unroll/tile and the OpenMP 6.0 preview, and
   the OMPLoopDirective helper set, inspected at the AST level. *)

open Helpers
open Mc_ast.Tree
module Shadow = Mc_sema.Shadow
module Canonical = Mc_sema.Canonical
module Visit = Mc_ast.Visit
module Unparse = Mc_ast.Unparse

(* Reuse the canonical-analysis harness. *)
let analyze_loop = Test_canonical.analyze_loop

let count_fors stmt =
  let n = ref 0 in
  Visit.iter ~shadow:false
    ~on_stmt:(fun s -> match s.s_kind with For _ -> incr n | _ -> ())
    stmt;
  !n

let var_names stmt =
  let acc = ref [] in
  Visit.iter ~shadow:false ~on_var:(fun v -> acc := v.v_name :: !acc) stmt;
  List.rev !acc

let test_unroll_structure () =
  let sema, a = analyze_loop "for (int i = 0; i < 10; i += 1) record(i);" in
  let tr = Shadow.transformed_unroll sema a ~factor:4 in
  (* Strip-mined: outer + inner loop, no body duplication. *)
  Alcotest.(check int) "two loops" 2 (count_fors tr.Shadow.tr_stmt);
  Alcotest.(check int) "one capture" 1 (List.length tr.Shadow.tr_capture_vars);
  Alcotest.(check string) "capture name" ".capture_expr."
    (List.hd tr.Shadow.tr_capture_vars).v_name;
  let printed = Unparse.stmt_to_string tr.Shadow.tr_stmt in
  check_contains ~what:"outer stride" printed ".unrolled.iv.i += 4";
  check_contains ~what:"hint" printed "#pragma clang loop unroll_count(4)";
  check_contains ~what:"inner guard" printed "&&";
  (* Calls are not duplicated in the AST (paper §2.1). *)
  let calls = ref 0 in
  Visit.iter ~shadow:false
    ~on_expr:(fun e -> match e.e_kind with Call _ -> incr calls | _ -> ())
    tr.Shadow.tr_stmt;
  Alcotest.(check int) "single call" 1 !calls

let test_tile_structure () =
  let sema, outer = analyze_loop "for (int i = 0; i < 6; i += 1) record(i);" in
  let _, inner = analyze_loop "for (int j = 0; j < 8; j += 1) record(j);" in
  let tr =
    Shadow.transformed_tile sema [ outer; inner ] ~sizes:[ 2; 4 ]
      ~loc:Mc_srcmgr.Source_location.invalid
  in
  (* 2n loops for an n-deep tile. *)
  Alcotest.(check int) "four loops" 4 (count_fors tr.Shadow.tr_stmt);
  Alcotest.(check int) "two captures" 2 (List.length tr.Shadow.tr_capture_vars);
  let names = var_names tr.Shadow.tr_stmt in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (List.mem needle names))
    [ ".floor.0.iv.i"; ".floor.1.iv.j"; ".tile.0.iv.i"; ".tile.1.iv.j" ]

let test_reverse_structure () =
  let sema, a = analyze_loop "for (int i = 0; i < 9; i += 2) record(i);" in
  let tr = Shadow.transformed_reverse sema a in
  Alcotest.(check int) "one loop" 1 (count_fors tr.Shadow.tr_stmt);
  let printed = Unparse.stmt_to_string tr.Shadow.tr_stmt in
  check_contains ~what:"reversed iv" printed ".reversed.iv.i";
  (* The body reconstructs the user value from n-1-iv. *)
  check_contains ~what:"backwards" printed ".capture_expr. - 1 - .reversed.iv.i"

let test_interchange_structure () =
  let sema, l0 = analyze_loop "for (int i = 0; i < 3; i += 1) record(i);" in
  let _, l1 = analyze_loop "for (int j = 0; j < 5; j += 1) record(j);" in
  let tr =
    Shadow.transformed_interchange sema [ l0; l1 ] ~perm:[ 1; 0 ]
      ~loc:Mc_srcmgr.Source_location.invalid
  in
  (* The j-loop must now be outermost. *)
  (match tr.Shadow.tr_stmt.s_kind with
  | For { for_init = Some { s_kind = Decl_stmt [ v ]; _ }; _ } ->
    Alcotest.(check string) "outermost is j" ".interchanged.iv.j" v.v_name
  | _ -> Alcotest.fail "expected a for with a decl init");
  Alcotest.(check int) "two loops" 2 (count_fors tr.Shadow.tr_stmt)

let test_fuse_structure () =
  let sema, l0 = analyze_loop "for (int i = 0; i < 3; i += 1) record(i);" in
  let _, l1 = analyze_loop "for (int j = 0; j < 7; j += 1) record(j);" in
  let tr =
    Shadow.transformed_fuse sema [ l0; l1 ] ~loc:Mc_srcmgr.Source_location.invalid
  in
  Alcotest.(check int) "one fused loop" 1 (count_fors tr.Shadow.tr_stmt);
  (* One guard per member. *)
  let ifs = ref 0 in
  Visit.iter ~shadow:false
    ~on_stmt:(fun s -> match s.s_kind with If _ -> incr ifs | _ -> ())
    tr.Shadow.tr_stmt;
  Alcotest.(check int) "two guards" 2 !ifs;
  (* Captures: one per loop plus the max. *)
  Alcotest.(check int) "three captures" 3 (List.length tr.Shadow.tr_capture_vars)

let test_stripe_structure () =
  let sema, outer = analyze_loop "for (int i = 0; i < 7; i += 1) record(i);" in
  let _, inner = analyze_loop "for (int j = 0; j < 5; j += 1) record(j);" in
  let tr =
    Shadow.transformed_stripe sema [ outer; inner ] ~sizes:[ 3; 2 ]
      ~loc:Mc_srcmgr.Source_location.invalid
  in
  Alcotest.(check int) "2n loops" 4 (count_fors tr.Shadow.tr_stmt);
  Alcotest.(check int) "two captures" 2 (List.length tr.Shadow.tr_capture_vars);
  let names = var_names tr.Shadow.tr_stmt in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (List.mem needle names))
    [ ".stripe_grid.0.iv.i"; ".stripe.0.iv.i"; ".stripe_grid.1.iv.j";
      ".stripe.1.iv.j" ];
  (* The difference from tile: each grid loop directly contains its stripe
     loop, so nesting depth is grid0 > stripe0 > grid1 > stripe1. *)
  let rec loop_ivs s =
    match s.s_kind with
    | For { for_init = Some { s_kind = Decl_stmt [ v ]; _ }; for_body; _ } ->
      v.v_name :: loop_ivs for_body
    | Compound [ one ] -> loop_ivs one
    | Compound more -> List.concat_map loop_ivs more
    | _ -> []
  in
  Alcotest.(check (list string))
    "adjacent grid/stripe pairs"
    [ ".stripe_grid.0.iv.i"; ".stripe.0.iv.i"; ".stripe_grid.1.iv.j";
      ".stripe.1.iv.j" ]
    (loop_ivs tr.Shadow.tr_stmt)

let test_loop_helpers_structure () =
  let sema, l0 = analyze_loop "for (int i = 0; i < 4; i += 1) record(i);" in
  let _, l1 = analyze_loop "for (int j = 0; j < 6; j += 1) record(j);" in
  let h =
    Shadow.build_loop_helpers sema [ l0; l1 ]
      ~loc:Mc_srcmgr.Source_location.invalid
  in
  (* Logical-space machinery in the expected shapes. *)
  Alcotest.(check string) "iv" ".omp.iv" h.lhs_iteration_variable.v_name;
  Alcotest.(check string) "lb" ".omp.lb" h.lhs_lower_bound_variable.v_name;
  Alcotest.(check int) "per-loop helpers" 2 (List.length h.lhs_loops);
  Alcotest.(check int) "capture exprs" 2 (List.length h.lhs_capture_exprs);
  (* NumIterations is the product of the .capture_expr. temporaries, whose
     initialisers are compile-time constants here: 4 and 6. *)
  let capture_values =
    List.map
      (fun v ->
        match Option.map Mc_sema.Const_eval.eval_int v.v_init with
        | Some (Some value) -> value
        | _ -> Alcotest.fail "capture init should be constant")
      h.lhs_capture_exprs
  in
  Alcotest.(check (list int64)) "per-loop counts" [ 4L; 6L ] capture_values;
  (* cond is .omp.iv <= .omp.ub *)
  let cond = Unparse.expr_to_string h.lhs_cond in
  check_contains ~what:"cond" cond ".omp.iv";
  check_contains ~what:"cond ub" cond "<= .omp.ub";
  (* The combined/distribute slots stay empty for plain worksharing. *)
  Alcotest.(check bool) "no combined lb" true (h.lhs_combined_lower_bound = None);
  Alcotest.(check int) "occupied" 28 (Visit.helper_occupied_count h)

let suite =
  [
    tc "unroll: strip-mine + hint, no duplication" test_unroll_structure;
    tc "tile: 2n loops and capture set" test_tile_structure;
    tc "reverse: backwards user value" test_reverse_structure;
    tc "interchange: permuted nest order" test_interchange_structure;
    tc "fuse: guards and max capture" test_fuse_structure;
    tc "stripe: adjacent grid/stripe pairs" test_stripe_structure;
    tc "OMPLoopDirective helper shapes" test_loop_helpers_structure;
  ]
